"""Unit tests for :mod:`repro.parallel.admission`.

The gate, quota and breaker mechanics are exercised in isolation here (the
breaker against an injected fake clock, the gate against real-but-short
waits); ``tests/test_serve_chaos.py`` drives the same machinery end-to-end
through the ``vxserve`` socket under concurrent load.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel.admission import (
    AdmissionGate,
    CircuitBreaker,
    CircuitBreakerBoard,
    CircuitOpenError,
    ClientQuotas,
    OverloadedError,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    QuotaExceededError,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition never became true")


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- AdmissionGate -------------------------------------------------------------


def test_unbounded_gate_counts_but_never_sheds():
    gate = AdmissionGate(None)
    for _ in range(100):
        gate.admit()
    assert gate.inflight == 100
    assert gate.admitted == 100
    for _ in range(100):
        gate.release(0.01)
    assert gate.inflight == 0
    assert gate.completed == 100


def test_gate_sheds_beyond_cap_with_retry_hint():
    gate = AdmissionGate(2, queue_depth=0)
    gate.admit()
    gate.admit()
    with pytest.raises(OverloadedError) as caught:
        gate.admit()
    assert caught.value.code == "overloaded"
    assert caught.value.retryable is True
    assert caught.value.retry_after_seconds > 0
    assert gate.shed_total == 1
    gate.release()
    gate.admit()  # freed slot is usable again
    assert gate.admitted == 3


def test_gate_rejects_bad_configuration_and_priority():
    with pytest.raises(ValueError):
        AdmissionGate(0)
    with pytest.raises(ValueError):
        AdmissionGate(1, queue_depth=-1)
    gate = AdmissionGate(1)
    with pytest.raises(ValueError):
        gate.admit("urgent")


def test_queued_request_is_granted_on_release():
    gate = AdmissionGate(1, queue_depth=1, queue_timeout=5.0)
    gate.admit()
    admitted = []

    def waiter():
        gate.admit()
        admitted.append(True)

    thread = threading.Thread(target=waiter)
    thread.start()
    wait_until(lambda: gate.queue_length == 1)
    assert not admitted
    gate.release(0.01)
    thread.join(timeout=5)
    assert admitted == [True]
    assert gate.queued == 1
    assert gate.shed_total == 0
    gate.release()


def test_queue_wait_times_out_as_overloaded():
    gate = AdmissionGate(1, queue_depth=1, queue_timeout=0.05)
    gate.admit()
    started = time.monotonic()
    with pytest.raises(OverloadedError):
        gate.admit()
    assert time.monotonic() - started >= 0.05
    assert gate.shed_total == 1
    assert gate.queue_length == 0  # the shed waiter removed itself


def test_interactive_waiter_is_granted_before_batch():
    gate = AdmissionGate(1, queue_depth=4, queue_timeout=5.0)
    gate.admit()
    order: list[str] = []

    def waiter(priority: str, tag: str):
        gate.admit(priority)
        order.append(tag)

    batch = threading.Thread(target=waiter, args=(PRIORITY_BATCH, "batch"))
    batch.start()
    wait_until(lambda: gate.queue_length == 1)
    interactive = threading.Thread(
        target=waiter, args=(PRIORITY_INTERACTIVE, "interactive"))
    interactive.start()
    wait_until(lambda: gate.queue_length == 2)
    gate.release()   # one slot: the interactive waiter must win it
    wait_until(lambda: order == ["interactive"])
    gate.release()   # now the batch waiter gets its turn
    wait_until(lambda: order == ["interactive", "batch"])
    batch.join(timeout=5)
    interactive.join(timeout=5)
    gate.release()


def test_interactive_evicts_newest_batch_waiter_when_queue_full():
    gate = AdmissionGate(1, queue_depth=1, queue_timeout=5.0)
    gate.admit()
    outcome: dict[str, object] = {}

    def batch_waiter():
        try:
            gate.admit(PRIORITY_BATCH)
            outcome["batch"] = "admitted"
        except OverloadedError as error:
            outcome["batch"] = error

    def interactive_waiter():
        gate.admit(PRIORITY_INTERACTIVE)
        outcome["interactive"] = "admitted"

    batch = threading.Thread(target=batch_waiter)
    batch.start()
    wait_until(lambda: gate.queue_length == 1)
    interactive = threading.Thread(target=interactive_waiter)
    interactive.start()
    # The interactive arrival evicts the queued batch request outright.
    wait_until(lambda: isinstance(outcome.get("batch"), OverloadedError))
    assert gate.batch_evictions == 1
    assert "yielded" in str(outcome["batch"])
    gate.release()
    interactive.join(timeout=5)
    assert outcome["interactive"] == "admitted"
    batch.join(timeout=5)
    gate.release()


def test_batch_is_shed_not_queued_when_queue_full():
    gate = AdmissionGate(1, queue_depth=0, queue_timeout=5.0)
    gate.admit()
    with pytest.raises(OverloadedError, match="batch sheds first"):
        gate.admit(PRIORITY_BATCH)
    gate.release()


def test_snapshot_reports_monotonic_counters_and_gauges():
    gate = AdmissionGate(2, queue_depth=3, queue_timeout=0.01)
    gate.admit()
    snapshot = gate.snapshot()
    assert snapshot["max_inflight"] == 2
    assert snapshot["inflight"] == 1
    assert snapshot["admitted_total"] == 1
    assert snapshot["peak_inflight"] == 1
    gate.release(0.2)
    after = gate.snapshot()
    assert after["completed_total"] == 1
    assert after["mean_request_seconds"] > 0


# -- ClientQuotas --------------------------------------------------------------


def test_quota_caps_one_client_but_not_others():
    quotas = ClientQuotas(2)
    quotas.acquire("alice")
    quotas.acquire("alice")
    with pytest.raises(QuotaExceededError) as caught:
        quotas.acquire("alice")
    assert caught.value.code == "quota_exceeded"
    quotas.acquire("bob")  # other clients unaffected
    quotas.release("alice")
    quotas.acquire("alice")  # freed capacity is reusable
    assert quotas.snapshot()["inflight_by_client"] == {"alice": 2, "bob": 1}
    assert quotas.snapshot()["rejections_total"] == 1


def test_quota_disabled_still_tracks_gauges():
    quotas = ClientQuotas(None)
    for _ in range(10):
        quotas.acquire("greedy")
    assert quotas.snapshot()["inflight_by_client"] == {"greedy": 10}
    for _ in range(10):
        quotas.release("greedy")
    assert quotas.snapshot()["inflight_by_client"] == {}


def test_quota_release_is_safe_when_overdrawn():
    quotas = ClientQuotas(1)
    quotas.release("ghost")  # never acquired: must not wedge the table
    quotas.acquire("ghost")
    with pytest.raises(QuotaExceededError):
        quotas.acquire("ghost")


# -- CircuitBreaker ------------------------------------------------------------


def test_breaker_opens_after_threshold_and_reports_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, reset_timeout=10.0, clock=clock)
    for _ in range(2):
        breaker.check()
        breaker.record_failure()
    assert breaker.state == STATE_CLOSED
    breaker.check()
    breaker.record_failure()   # third consecutive failure trips it
    assert breaker.state == STATE_OPEN
    assert breaker.trips == 1
    clock.advance(4.0)
    with pytest.raises(CircuitOpenError) as caught:
        breaker.check()
    assert caught.value.code == "circuit_open"
    assert caught.value.retry_after_seconds == pytest.approx(6.0, abs=0.01)


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(threshold=3, clock=FakeClock())
    for _ in range(2):
        breaker.check()
        breaker.record_failure()
    breaker.check()
    breaker.record_success()
    assert breaker.failures == 0
    for _ in range(2):
        breaker.check()
        breaker.record_failure()
    assert breaker.state == STATE_CLOSED  # the run restarted from zero


def test_breaker_half_open_probe_single_flight_and_close():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
    breaker.check()
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    clock.advance(5.0)
    breaker.check()            # cool-down over: this claims the probe slot
    assert breaker.state == STATE_HALF_OPEN
    with pytest.raises(CircuitOpenError):
        breaker.check()        # a second request mid-probe is refused
    breaker.record_success()   # probe healthy: breaker closes
    assert breaker.state == STATE_CLOSED
    breaker.check()            # and traffic flows again


def test_breaker_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
    breaker.check()
    breaker.record_failure()
    clock.advance(5.0)
    breaker.check()
    breaker.record_failure()   # probe failed: back to open, cool-down restarts
    assert breaker.state == STATE_OPEN
    assert breaker.trips == 2
    with pytest.raises(CircuitOpenError):
        breaker.check()
    clock.advance(5.0)
    breaker.check()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED


def test_board_keys_breakers_by_archive_and_sums_totals():
    clock = FakeClock()
    board = CircuitBreakerBoard(threshold=1, reset_timeout=9.0, clock=clock)
    key = board.check("/tmp/poisoned.zip")
    assert key == "/tmp/poisoned.zip"
    board.record(key, ok=False)
    with pytest.raises(CircuitOpenError):
        board.check("/tmp/poisoned.zip")
    board.check("/tmp/healthy.zip")   # other archives unaffected
    board.record("/tmp/healthy.zip", ok=True)
    snapshot = board.snapshot()
    assert snapshot["/tmp/poisoned.zip"]["state"] == STATE_OPEN
    assert snapshot["/tmp/poisoned.zip"]["retry_after_seconds"] > 0
    assert snapshot["/tmp/healthy.zip"]["state"] == STATE_CLOSED
    totals = board.totals()
    assert totals["breaker_trips_total"] == 1
    assert totals["breakers_open"] == 1
    assert totals["breaker_rejections_total"] == 1


def test_board_disabled_passes_everything():
    board = CircuitBreakerBoard(threshold=0)
    assert not board.enabled
    assert board.check("/tmp/anything.zip") is None
    board.record("/tmp/anything.zip", ok=False)
    assert board.snapshot() == {}


def test_board_check_without_archive_is_a_no_op():
    board = CircuitBreakerBoard(threshold=1)
    assert board.check(None) is None
    board.record(None, ok=False)
    assert board.snapshot() == {}
