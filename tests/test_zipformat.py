"""Tests for the from-scratch ZIP container layer."""

import io
import zipfile
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.errors import ZipFormatError
from repro.zipformat.crc import StreamingCrc32, crc32
from repro.zipformat.reader import ZipReader
from repro.zipformat.structures import (
    ExtraField,
    METHOD_DEFLATE,
    METHOD_STORE,
    METHOD_VXA,
    dos_datetime,
    pack_extra_fields,
    unpack_extra_fields,
)
from repro.zipformat.writer import ZipWriter, deflate_compress, deflate_decompress


# -- CRC-32 ---------------------------------------------------------------------


def test_crc32_known_vectors():
    assert crc32(b"") == 0
    assert crc32(b"123456789") == 0xCBF43926
    assert crc32(b"The quick brown fox jumps over the lazy dog") == 0x414FA339


@given(st.binary(max_size=2000))
def test_crc32_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data) & 0xFFFFFFFF


@given(st.binary(max_size=500), st.binary(max_size=500))
def test_crc32_streaming_equals_one_shot(part_a, part_b):
    assert crc32(part_b, crc32(part_a)) == crc32(part_a + part_b)
    streaming = StreamingCrc32()
    streaming.update(part_a)
    streaming.update(part_b)
    assert streaming.value == crc32(part_a + part_b)


# -- deflate helpers ----------------------------------------------------------------


@given(st.binary(max_size=4000))
def test_deflate_round_trip(data):
    assert deflate_decompress(deflate_compress(data), len(data)) == data


def test_deflate_size_mismatch_detected():
    compressed = deflate_compress(b"hello world")
    with pytest.raises(ZipFormatError):
        deflate_decompress(compressed, 5)


# -- extra fields ---------------------------------------------------------------------


def test_extra_field_round_trip():
    fields = [ExtraField(0x7856, b"payload"), ExtraField(0x0001, b"\x01\x02")]
    packed = pack_extra_fields(fields)
    unpacked = unpack_extra_fields(packed)
    assert [(field.header_id, field.payload) for field in unpacked] == [
        (0x7856, b"payload"),
        (0x0001, b"\x01\x02"),
    ]


def test_dos_datetime_packing():
    time_word, date_word = dos_datetime(2005, 12, 13, 14, 30, 20)
    assert date_word >> 9 == 2005 - 1980
    assert (date_word >> 5) & 0xF == 12
    assert date_word & 0x1F == 13
    assert time_word >> 11 == 14
    assert (time_word >> 5) & 0x3F == 30


# -- writer/reader round trips -----------------------------------------------------------


def build_simple_archive() -> bytes:
    writer = ZipWriter()
    writer.add_member("readme.txt", b"hello vxzip", method=METHOD_STORE)
    writer.add_deflate_member("src/main.c", b"int main() { return 0; }\n" * 50)
    return writer.finish(b"test archive")


def test_round_trip_store_and_deflate():
    archive = build_simple_archive()
    reader = ZipReader(archive)
    assert reader.names() == ["readme.txt", "src/main.c"]
    assert reader.read_member(reader.find("readme.txt")) == b"hello vxzip"
    assert reader.read_member(reader.find("src/main.c")) == b"int main() { return 0; }\n" * 50
    assert reader.comment == b"test archive"


def test_missing_member_raises():
    reader = ZipReader(build_simple_archive())
    with pytest.raises(ZipFormatError):
        reader.find("nope.txt")
    assert "readme.txt" in reader
    assert "nope.txt" not in reader


def test_crc_corruption_detected():
    archive = bytearray(build_simple_archive())
    # Flip a byte inside the stored member's data ("hello vxzip").
    index = archive.find(b"hello vxzip")
    archive[index] ^= 0xFF
    reader = ZipReader(bytes(archive))
    with pytest.raises(ZipFormatError):
        reader.read_member(reader.find("readme.txt"))


def test_pseudo_files_are_hidden_but_reachable():
    writer = ZipWriter()
    writer.add_member("visible.txt", b"visible")
    pseudo = writer.add_pseudo_file(b"decoder image bytes" * 100)
    archive = writer.finish()
    reader = ZipReader(archive)
    assert reader.names() == ["visible.txt"]               # pseudo-file not listed
    entry, data = reader.read_member_at(pseudo.local_header_offset)
    assert data == b"decoder image bytes" * 100
    assert entry.name == ""
    assert entry.method == METHOD_DEFLATE                   # decoders are deflated


def test_vxa_method_members_not_readable_directly():
    writer = ZipWriter()
    writer.add_member("weird.vxz", b"\x01\x02\x03", method=METHOD_VXA,
                      uncompressed_size=100, crc=0)
    reader = ZipReader(writer.finish())
    with pytest.raises(ZipFormatError):
        reader.read_member(reader.find("weird.vxz"))
    assert reader.read_stored_bytes(reader.find("weird.vxz")) == b"\x01\x02\x03"


def test_truncated_archive_rejected():
    archive = build_simple_archive()
    with pytest.raises(ZipFormatError):
        ZipReader(archive[: len(archive) // 2])
    with pytest.raises(ZipFormatError):
        ZipReader(b"not a zip at all")


def test_writer_rejects_use_after_finish():
    writer = ZipWriter()
    writer.add_member("a", b"a")
    writer.finish()
    with pytest.raises(ZipFormatError):
        writer.add_member("b", b"b")
    with pytest.raises(ZipFormatError):
        writer.finish()


# -- interoperability with the standard library --------------------------------------------


def test_stdlib_zipfile_can_list_and_extract_standard_members():
    """Archives we write are genuine ZIP files old tools can partially use."""
    archive = build_simple_archive()
    with zipfile.ZipFile(io.BytesIO(archive)) as handle:
        assert handle.namelist() == ["readme.txt", "src/main.c"]
        assert handle.read("readme.txt") == b"hello vxzip"
        assert handle.read("src/main.c") == b"int main() { return 0; }\n" * 50
        assert handle.testzip() is None


def test_stdlib_zipfile_round_trip_into_our_reader():
    """We can read archives produced by an unmodified ZIP implementation."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as handle:
        handle.writestr("alpha.txt", b"alpha contents")
        handle.writestr("beta/gamma.txt", b"gamma contents" * 200)
    reader = ZipReader(buffer.getvalue())
    assert set(reader.names()) == {"alpha.txt", "beta/gamma.txt"}
    assert reader.read_member(reader.find("alpha.txt")) == b"alpha contents"
    assert reader.read_member(reader.find("beta/gamma.txt")) == b"gamma contents" * 200


# -- EOCD location pinning ----------------------------------------------------------
#
# The backward scan for the end-of-central-directory record must survive
# trailing junk and hostile comments, and every truncation must surface as
# ZipFormatError -- never a raw struct.error leaking from the parser.


def test_trailing_junk_after_eocd_tolerated():
    archive = build_simple_archive()
    reader = ZipReader(archive + b"\x00" * 40 + b"junk appended by a mirror")
    assert reader.names() == ["readme.txt", "src/main.c"]
    assert reader.read_member(reader.find("readme.txt")) == b"hello vxzip"


def test_fake_eocd_signature_in_comment_ignored():
    # A comment embedding the EOCD magic followed by garbage: the backward
    # scan must reject the fake candidate (bad bounds) and keep looking.
    fake = b"PK\x05\x06" + b"\xff" * 18
    writer = ZipWriter()
    writer.add_member("real.txt", b"real data", method=METHOD_STORE)
    archive = writer.finish(b"prefix " + fake + b" suffix")
    reader = ZipReader(archive)
    assert reader.names() == ["real.txt"]
    assert fake in reader.comment


def test_comment_length_lie_rejected():
    archive = bytearray(build_simple_archive())
    # The comment length field is the last u16 before the comment bytes;
    # inflate it so it claims more bytes than the file holds.
    comment = b"test archive"
    length_at = len(archive) - len(comment) - 2
    archive[length_at:length_at + 2] = (len(comment) + 99).to_bytes(2, "little")
    with pytest.raises(ZipFormatError):
        ZipReader(bytes(archive))


def test_every_truncation_raises_zipformaterror_not_struct_error():
    archive = build_simple_archive()
    for drop in range(1, 80):
        truncated = archive[:-drop]
        try:
            reader = ZipReader(truncated)
        except ZipFormatError:
            continue                        # the only acceptable refusal
        # An open that "succeeds" must have found a shorter-comment EOCD
        # parse that is still internally consistent; members stay readable.
        for entry in reader.entries:
            reader.read_stored_bytes(entry)


def test_salvage_scan_recovers_members_without_directory():
    archive = build_simple_archive()
    strict = ZipReader(archive)
    torn = archive[:strict.directory_offset + 7]     # mid-directory tear
    with pytest.raises(ZipFormatError):
        ZipReader(torn)
    salvaged = ZipReader(torn, salvage=True)
    assert salvaged.directory_reconstructed
    assert salvaged.names() == ["readme.txt", "src/main.c"]
    assert salvaged.read_member(salvaged.find("readme.txt")) == b"hello vxzip"


def test_commit_marker_round_trip_at_container_level():
    writer = ZipWriter()
    writer.add_member("a.txt", b"alpha", method=METHOD_STORE)
    archive = writer.finish(b"note", commit=True)
    reader = ZipReader(archive)
    assert reader.commit_verified
    assert reader.comment == b"note"
    # Flipping one directory byte must break the committed-directory check.
    damaged = bytearray(archive)
    damaged[reader.directory_offset + 10] ^= 0x5A
    with pytest.raises(ZipFormatError):
        ZipReader(bytes(damaged))
