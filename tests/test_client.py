"""Tests for :mod:`repro.client` -- the retrying ``vxserve`` client.

Most tests run against :class:`ScriptedServer`, a stub unix-socket server
that plays back a scripted sequence of behaviours (respond / drop the
connection / stay silent), so retry, backoff, reconnect and timeout paths
are exercised deterministically with an injected rng and sleep recorder.
A final end-to-end test drives a real :class:`BatchService`.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time

import pytest

import repro.api as vxa
from repro.api.options import EXECUTOR_THREAD
from repro.client import (
    VxServeClient,
    VxServeConnectionError,
    VxServeError,
    VxServeTimeout,
    main as vxquery_main,
)
from repro.parallel.service import BatchService
from repro.workloads import synthetic_log_bytes

DROP = "drop"      # close the connection without responding
SILENT = "silent"  # swallow the request, never respond (client times out)


class ScriptedServer:
    """A unix-socket stub that replays one scripted action per request.

    Script entries:
        * a dict -- merged into ``{"id": <request id>}`` and sent back;
        * a list of dicts -- each sent back in order (stale ids included,
          for exercising the client's skip-mismatched-id path);
        * ``DROP`` -- the connection is closed without a response;
        * ``SILENT`` -- the request is swallowed; nothing is ever sent.

    When the script is exhausted every further request gets a generic
    ``{"ok": true}`` echo.  All received requests are recorded.
    """

    def __init__(self, path: str, script: list):
        self.path = str(path)
        self.script = list(script)
        self.requests: list[dict] = []
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _next_action(self, request: dict):
        with self._lock:
            self.requests.append(request)
            if self.script:
                return self.script.pop(0)
        return {"ok": True, "result": {"echo": request.get("op")}}

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with connection:
                reader = connection.makefile("r", encoding="utf-8")
                for line in reader:
                    request = json.loads(line)
                    action = self._next_action(request)
                    if action == DROP:
                        # Send FIN so the client sees EOF, not a hang (the
                        # makefile reference would otherwise keep the fd up).
                        try:
                            connection.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        break
                    if action == SILENT:
                        continue
                    responses = action if isinstance(action, list) else [action]
                    for response in responses:
                        payload = dict(response)
                        payload.setdefault("id", request.get("id"))
                        try:
                            connection.sendall(
                                (json.dumps(payload) + "\n").encode())
                        except OSError:
                            break

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5)
        if os.path.exists(self.path):
            os.unlink(self.path)


@pytest.fixture()
def make_server(tmp_path):
    servers = []

    def factory(script: list) -> ScriptedServer:
        server = ScriptedServer(tmp_path / f"stub{len(servers)}.sock", script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def make_client(server: ScriptedServer, **overrides) -> VxServeClient:
    options = dict(retries=3, timeout=5.0, base_delay=0.001, max_delay=0.002,
                   rng=random.Random(7), sleep=lambda _: None)
    options.update(overrides)
    return VxServeClient(server.path, **options)


# -- happy path and request framing -------------------------------------------


def test_single_request_round_trip(make_server):
    server = make_server([{"ok": True, "result": {"pong": True}}])
    with make_client(server) as client:
        assert client.ping() == {"pong": True}
    assert server.requests[0]["op"] == "ping"
    assert client.reconnects == 0


def test_client_id_and_priority_ride_every_request(make_server):
    server = make_server([])
    with make_client(server, client_id="ci", priority="batch") as client:
        client.ping()
        client.check("/tmp/a.zip", jobs=2)
    for request in server.requests:
        assert request["client"] == "ci"
        assert request["priority"] == "batch"
    assert server.requests[1]["jobs"] == 2
    assert "members" not in server.requests[1]  # None fields are omitted


def test_stale_response_lines_are_skipped(make_server):
    server = make_server([[
        {"id": 999, "ok": True, "result": {"stale": True}},
        {"ok": True, "result": {"fresh": True}},
    ]])
    with make_client(server) as client:
        assert client.ping() == {"fresh": True}


# -- retry policy ---------------------------------------------------------------


def test_retry_honors_server_hint_as_floor(make_server):
    server = make_server([
        {"ok": False, "error": "try later", "error_code": "overloaded",
         "retry_after_seconds": 0.35},
        {"ok": True, "result": {"pong": True}},
    ])
    sleeps: list[float] = []
    with make_client(server, sleep=sleeps.append) as client:
        assert client.ping() == {"pong": True}
    # Jitter ceiling is base_delay=0.001, so the hint must be the floor.
    assert sleeps == [pytest.approx(0.35)]
    assert len(server.requests) == 2


def test_full_jitter_backoff_without_hint(make_server):
    server = make_server([
        {"ok": False, "error": "busy", "error_code": "overloaded"},
        {"ok": False, "error": "busy", "error_code": "overloaded"},
        {"ok": True, "result": {}},
    ])
    sleeps: list[float] = []
    with make_client(server, base_delay=0.1, max_delay=0.15,
                     sleep=sleeps.append) as client:
        client.ping()
    assert len(sleeps) == 2
    assert 0.0 <= sleeps[0] <= 0.1          # uniform(0, base * 2**0)
    assert 0.0 <= sleeps[1] <= 0.15         # uniform(0, min(max, base * 2))


def test_non_retryable_code_raises_immediately(make_server):
    server = make_server([
        {"ok": False, "error": "draining", "error_code": "draining"},
    ])
    sleeps: list[float] = []
    with make_client(server, sleep=sleeps.append) as client:
        with pytest.raises(VxServeError) as caught:
            client.ping()
    assert caught.value.code == "draining"
    assert caught.value.attempts == 1
    assert sleeps == []                     # no backoff for final failures
    assert len(server.requests) == 1


def test_retries_exhausted_surface_last_rejection(make_server):
    rejection = {"ok": False, "error": "full", "error_code": "overloaded",
                 "retry_after_seconds": 0.01}
    server = make_server([dict(rejection) for _ in range(4)])
    with make_client(server, retries=3) as client:
        with pytest.raises(VxServeError) as caught:
            client.ping()
    assert caught.value.code == "overloaded"
    assert caught.value.attempts == 4       # 1 initial + 3 retries
    assert caught.value.retry_after_seconds == 0.01
    assert caught.value.response["error"] == "full"


# -- transport failures ---------------------------------------------------------


def test_reconnects_after_dropped_connection(make_server):
    server = make_server([DROP, {"ok": True, "result": {"pong": True}}])
    with make_client(server) as client:
        assert client.ping() == {"pong": True}
        assert client.reconnects == 1


def test_timeout_abandons_connection_and_retries(make_server):
    server = make_server([SILENT, {"ok": True, "result": {"pong": True}}])
    with make_client(server, timeout=0.2) as client:
        assert client.ping() == {"pong": True}
    assert len(server.requests) == 2


def test_all_attempts_time_out(make_server):
    server = make_server([SILENT, SILENT])
    with make_client(server, retries=1, timeout=0.1) as client:
        with pytest.raises(VxServeTimeout) as caught:
            client.ping()
    assert caught.value.attempts == 2


def test_unreachable_server_raises_connection_error(tmp_path):
    client = VxServeClient(str(tmp_path / "nowhere.sock"), retries=1,
                           base_delay=0.001, sleep=lambda _: None)
    with pytest.raises(VxServeConnectionError) as caught:
        client.ping()
    assert caught.value.attempts == 2


def test_invalid_configuration_rejected(tmp_path):
    with pytest.raises(ValueError):
        VxServeClient(str(tmp_path / "s.sock"), retries=-1)
    with pytest.raises(ValueError):
        VxServeClient(str(tmp_path / "s.sock"), base_delay=-0.1)


# -- end to end against the real service ---------------------------------------


@pytest.fixture()
def live_service(tmp_path_factory):
    service = BatchService(jobs=2, executor=EXECUTOR_THREAD)
    socket_path = str(tmp_path_factory.mktemp("client-e2e") / "vxserve.sock")
    server = threading.Thread(target=service.serve_socket, args=(socket_path,),
                              daemon=True)
    server.start()
    deadline = time.monotonic() + 10
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:
            raise AssertionError("socket never appeared")
        time.sleep(0.02)
    yield service, socket_path
    if not service.stopping:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as kick:
            kick.connect(socket_path)
            kick.sendall(b'{"op": "shutdown"}\n')
    server.join(timeout=10)
    service.close()


def test_end_to_end_extract_and_health(tmp_path, live_service):
    service, socket_path = live_service
    payloads = {f"doc{index}.txt": synthetic_log_bytes(700 + index * 70,
                                                       seed=index)
                for index in range(3)}
    archive = tmp_path / "e2e.zip"
    with vxa.create(archive) as builder:
        for name, data in payloads.items():
            builder.add(name, data, codec="vxz")

    dest = tmp_path / "out"
    with VxServeClient(socket_path, client_id="e2e", timeout=60) as client:
        listed = client.list(str(archive))
        assert {member["name"] for member in listed["members"]} \
            == set(payloads)
        result = client.extract(str(archive), str(dest), jobs=2, mode="vxa")
        assert {record["name"] for record in result["records"]} \
            == set(payloads)
        health = client.health()
        assert health["ok"] is True and health["accepting"] is True
        stats = client.stats()
        assert stats["counters"]["requests_total"] >= 3
    for name, data in payloads.items():
        assert (dest / name).read_bytes() == data


def test_vxquery_cli_round_trip(capsys, live_service):
    _, socket_path = live_service
    assert vxquery_main(["--socket", socket_path, "ping"]) == 0
    output = json.loads(capsys.readouterr().out)
    assert output["pong"] is True


def test_vxquery_cli_reports_structured_failure(capsys, tmp_path):
    code = vxquery_main(["--socket", str(tmp_path / "missing.sock"),
                         "--retries", "0", "--timeout", "1", "ping"])
    assert code == 1
    detail = json.loads(capsys.readouterr().err)
    assert "error" in detail


def test_archive_damaged_is_final_not_retried(make_server):
    """Media damage is deterministic; the client must not burn retries on it."""
    from repro.client import RETRYABLE_CODES

    assert "archive_damaged" not in RETRYABLE_CODES
    server = make_server([
        {"ok": False, "error": "central directory does not match the "
                               "archive commit record",
         "error_type": "ZipFormatError", "error_code": "archive_damaged"},
    ])
    sleeps: list[float] = []
    with make_client(server, sleep=sleeps.append) as client:
        with pytest.raises(VxServeError) as caught:
            client.extract("/tmp/damaged.vxa", "/tmp/out")
    assert caught.value.code == "archive_damaged"
    assert caught.value.attempts == 1       # exactly one round trip
    assert sleeps == []                     # and no backoff
    assert len(server.requests) == 1
