"""The static verifier: bundled decoders prove safe, hostile images don't.

Covers the acceptance criteria of the ``repro.analysis`` subsystem:

* every bundled guest decoder image verifies ``safe`` with zero unsafe
  sites and a non-trivial set of proved (guard-elidable) accesses;
* ``disassemble_for_reassembly`` round-trips every bundled image through
  the assembler byte-exactly (the CFG walker reads what really runs);
* hand-assembled hostile images (out-of-bounds store, jump into an
  instruction's interior, forbidden syscall number) are classified unsafe
  and refused by ``verify_images="reject"`` -- at the VM layer and for a
  whole archive carrying the hostile decoder;
* reports serialise (``as_dict``/``from_dict``, JSON-stable);
* the translator actually elides guards and decodes identically with and
  without elision.
"""

import io
import json
import warnings

import pytest

from repro.analysis import VERDICT_UNSAFE, AnalysisReport, verify_image
from repro.api import Archive, ArchiveBuilder, MODE_VXA, ReadOptions, WriteOptions
from repro.codecs.registry import CodecRegistry
from repro.codecs.vxz import VxzCodec
from repro.elf.structures import ElfImage
from repro.errors import ImageVerificationError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_for_reassembly
from repro.vm.loader import admit_image
from repro.vm.machine import VirtualMachine
from repro.workloads.text import synthetic_source_tree_bytes
from tests.conftest import build_asm


def _bundled_codecs():
    from repro.codecs.registry import default_registry

    return list(default_registry())


@pytest.fixture(scope="module")
def bundled_reports():
    return {codec.info.name: verify_image(codec.guest_decoder_image())
            for codec in _bundled_codecs()}


# -- the six bundled decoders prove safe ------------------------------------------


def test_all_bundled_decoders_verify_safe(bundled_reports):
    assert set(bundled_reports) == {"vxz", "vxbwt", "vximg", "vxjp2",
                                    "vxflac", "vxsnd"}
    for name, report in bundled_reports.items():
        assert report.ok, (name, report.unsafe_sites)
        assert report.unsafe_sites == []
        assert report.stack_bounded, name
        assert 0 < report.total_down < report.min_size


def test_bundled_decoders_have_elidable_guards(bundled_reports):
    for name, report in bundled_reports.items():
        counts = report.counts()
        assert counts["proved"] > 100, (name, counts)
        assert len(report.proved_reads) > 50, name
        assert len(report.proved_writes) > 50, name
        # Not everything is provable: indirect branches at least stay dynamic.
        assert counts["guard"] > 0, name


def test_admission_accepts_bundled_decoders():
    for codec in _bundled_codecs():
        report = admit_image(codec.guest_decoder_image(), "reject")
        assert report is not None and report.ok


# -- disassemble -> reassemble round-trip -----------------------------------------


@pytest.mark.parametrize("name", ["vxz", "vxbwt", "vximg", "vxjp2",
                                  "vxflac", "vxsnd"])
def test_disassembly_round_trips_bundled_decoder(name):
    from repro.codecs.registry import default_registry
    from repro.elf.reader import parse_executable

    image = parse_executable(default_registry().get(name).guest_decoder_image())
    for segment in image.segments:
        if not segment.executable:
            continue
        source, scan_result = disassemble_for_reassembly(
            segment.data, base=segment.vaddr)
        assert scan_result.ok, scan_result.errors[:3]
        program = assemble(source, text_base=segment.vaddr)
        assert program.text == segment.data


# -- hostile images ----------------------------------------------------------------


@pytest.fixture(scope="module")
def hostile_images():
    return {
        "oob_store": build_asm("""
            _start:
                movi r1, 0x7fffff00
                st32 [r1+0], r0
                movi r0, 0
                vxcall
        """),
        "mid_insn_jump": build_asm("""
            _start:
                cmpi r0, 0
                je 0x100d
                movi r1, 0x11223344
                halt
        """),
        "bad_syscall": build_asm("""
            _start:
                movi r0, 99
                vxcall
                halt
        """),
    }


@pytest.mark.parametrize("fixture,kind", [
    ("oob_store", "write"),
    ("mid_insn_jump", "code"),
    ("bad_syscall", "syscall"),
])
def test_hostile_image_is_classified_unsafe(hostile_images, fixture, kind):
    report = verify_image(hostile_images[fixture])
    assert not report.ok
    assert any(site.kind == kind for site in report.unsafe_sites), \
        report.unsafe_sites


def test_reject_mode_refuses_hostile_images(hostile_images):
    for image in hostile_images.values():
        with pytest.raises(ImageVerificationError):
            admit_image(image, "reject")
        with pytest.raises(ImageVerificationError):
            VirtualMachine(image, verify_images="reject")


def test_warn_mode_warns_but_constructs(hostile_images):
    with pytest.warns(UserWarning, match="failed static verification"):
        vm = VirtualMachine(hostile_images["bad_syscall"], verify_images="warn")
    assert vm.analysis_report is not None
    assert not vm.analysis_report.ok


def test_off_mode_never_raises_on_hostile_images(hostile_images):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        vm = VirtualMachine(hostile_images["oob_store"])
    # Opportunistic analysis may attach a report, but elision never uses a
    # failed one (report.ok gates it in run_translator).
    if vm.analysis_report is not None:
        assert not vm.analysis_report.ok


def test_invalid_mode_rejected(hostile_images):
    with pytest.raises(ValueError):
        admit_image(hostile_images["oob_store"], "paranoid")
    with pytest.raises(ValueError):
        ReadOptions(verify_images="paranoid")


# -- a hostile archive is refused end to end --------------------------------------


class _HostileVxz(VxzCodec):
    """vxz with its guest decoder swapped for a hostile image."""

    hostile_image: bytes = b""

    def guest_decoder_image(self) -> bytes:
        return type(self).hostile_image


def _hostile_archive(hostile_images) -> bytes:
    _HostileVxz.hostile_image = hostile_images["oob_store"]
    registry = CodecRegistry([_HostileVxz()], default="vxz")
    buffer = io.BytesIO()
    with ArchiveBuilder(buffer, WriteOptions(registry=registry)) as builder:
        builder.add("evil.txt", synthetic_source_tree_bytes(4000, seed=11))
        builder.finish()
    return buffer.getvalue()


def test_reject_mode_refuses_hostile_archive(hostile_images):
    payload = _hostile_archive(hostile_images)
    options = ReadOptions(mode=MODE_VXA, verify_images="reject")
    with Archive(io.BytesIO(payload), options) as archive:
        with pytest.raises(ImageVerificationError):
            archive.extract("evil.txt")


def test_check_records_hostile_decoder_as_failure(hostile_images):
    payload = _hostile_archive(hostile_images)
    options = ReadOptions(mode=MODE_VXA, verify_images="reject")
    with Archive(io.BytesIO(payload), options) as archive:
        report = archive.check()
    assert not report.ok
    assert report.failures
    assert "static verification" in report.failures[0]


# -- report serialisation -----------------------------------------------------------


def test_report_round_trips_through_dict(bundled_reports):
    report = bundled_reports["vxz"]
    payload = json.loads(json.dumps(report.as_dict()))
    restored = AnalysisReport.from_dict(payload)
    assert restored.verdict == report.verdict
    assert restored.min_size == report.min_size
    assert restored.proved_reads == report.proved_reads
    assert restored.proved_writes == report.proved_writes
    assert restored.sites == report.sites
    assert restored.counts() == report.counts()


def test_unsafe_report_serialises_errors(hostile_images):
    report = verify_image(hostile_images["mid_insn_jump"])
    restored = AnalysisReport.from_dict(report.as_dict())
    assert not restored.ok
    assert restored.errors == report.errors
    assert any(site.verdict == VERDICT_UNSAFE for site in restored.sites)


# -- guard elision ------------------------------------------------------------------


def test_translator_elides_guards_and_output_matches():
    codec = VxzCodec()
    image = codec.guest_decoder_image()
    payload = codec.encode(synthetic_source_tree_bytes(12000, seed=12))

    vm_on = VirtualMachine(image)
    result_on = vm_on.decode(payload)
    vm_off = VirtualMachine(image, analysis_elision=False)
    result_off = vm_off.decode(payload)

    assert result_on.ok and result_off.ok
    assert result_on.output == result_off.output
    assert result_on.stats.guards_elided > 0
    assert result_off.stats.guards_elided == 0


def test_session_surfaces_analysis_counters():
    codec = VxzCodec()
    data = synthetic_source_tree_bytes(6000, seed=13)
    buffer = io.BytesIO()
    with ArchiveBuilder(buffer) as builder:
        builder.add("a.txt", data)
        builder.finish()
    options = ReadOptions(mode=MODE_VXA, verify_images="reject")
    with Archive(io.BytesIO(buffer.getvalue()), options) as archive:
        assert archive.extract("a.txt").data == data
        stats = archive.session.stats
    assert stats.images_verified == 1
    assert stats.guards_elided > 0


def test_elision_disabled_by_option():
    codec = VxzCodec()
    data = synthetic_source_tree_bytes(6000, seed=14)
    buffer = io.BytesIO()
    with ArchiveBuilder(buffer) as builder:
        builder.add("a.txt", data)
        builder.finish()
    options = ReadOptions(mode=MODE_VXA, analysis_elision=False)
    with Archive(io.BytesIO(buffer.getvalue()), options) as archive:
        assert archive.extract("a.txt").data == data
        assert archive.session.stats.guards_elided == 0


# -- CLI ----------------------------------------------------------------------------


def test_cli_analyze_safe_archive(tmp_path, capsys):
    from repro.cli import unzip_main

    import repro.api as vxa

    data = synthetic_source_tree_bytes(5000, seed=15)
    archive_path = tmp_path / "t.zip"
    with vxa.create(str(archive_path)) as builder:
        builder.add("a.txt", data)
        builder.finish()
    assert unzip_main(["analyze", str(archive_path)]) == 0
    output = capsys.readouterr().out
    assert "SAFE" in output
    assert "proved" in output


def test_cli_analyze_hostile_archive(tmp_path, capsys, hostile_images):
    from repro.cli import unzip_main

    archive_path = tmp_path / "evil.zip"
    archive_path.write_bytes(_hostile_archive(hostile_images))
    assert unzip_main(["analyze", str(archive_path)]) == 1
    output = capsys.readouterr().out
    assert "UNSAFE" in output


def test_cli_extract_verify_images_reject(tmp_path, capsys, hostile_images):
    from repro.cli import unzip_main

    archive_path = tmp_path / "evil.zip"
    archive_path.write_bytes(_hostile_archive(hostile_images))
    out_dir = tmp_path / "out"
    out_dir.mkdir()
    code = unzip_main(["extract", str(archive_path), "-o", str(out_dir),
                       "--vxa", "--verify-images", "reject"])
    assert code == 2
    assert "static verification" in capsys.readouterr().err


def test_verify_report_is_pure_function_of_image():
    codec = VxzCodec()
    image = codec.guest_decoder_image()
    assert verify_image(image) is verify_image(image)  # memoised by digest


def test_min_size_matches_loader_geometry(bundled_reports):
    from repro.elf.reader import parse_executable
    from repro.vm.loader import DEFAULT_STACK_SIZE, HEAP_HEADROOM

    for codec in _bundled_codecs():
        image: ElfImage = parse_executable(codec.guest_decoder_image())
        report = bundled_reports[codec.info.name]
        assert report.min_size == (image.load_size + HEAP_HEADROOM
                                   + DEFAULT_STACK_SIZE)
