"""Unit tests for the VXA-32 assembler and disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode_all
from repro.isa.opcodes import Op


def test_assemble_simple_program():
    program = assemble(
        """
        _start:
            movi r0, 1
            movi r1, 0x10
            add  r0, r1
            halt
        """
    )
    ops = [insn.op for _, insn in decode_all(program.text)]
    assert ops == [Op.MOVI, Op.MOVI, Op.ADD, Op.HALT]
    assert program.entry == program.text_base
    assert program.symbols["_start"] == program.text_base


def test_labels_and_branches_resolve_relative():
    program = assemble(
        """
        _start:
            movi r0, 0
        loop:
            addi r0, 1
            cmpi r0, 10
            jne  loop
            halt
        """
    )
    instructions = list(decode_all(program.text))
    jne_offset, jne = instructions[3]
    # branch target = address just after the jne, plus the relative immediate
    assert program.text_base + jne_offset + jne.length + jne.imm == program.symbols["loop"]


def test_data_section_and_symbols():
    program = assemble(
        """
        _start:
            movi r0, message
            halt
        .data
        message:
            .asciz "hi"
        value:
            .word 0xdeadbeef
        """
    )
    assert program.symbols["message"] == program.data_base
    assert program.data[:3] == b"hi\x00"
    assert program.symbols["value"] == program.data_base + 3
    assert program.data[3:7] == bytes.fromhex("efbeadde")


def test_memory_operands_with_displacement():
    program = assemble(
        """
        _start:
            ld32 r0, [r1+8]
            st8  [r2-1], r3
            halt
        """
    )
    instructions = [insn for _, insn in decode_all(program.text)]
    assert instructions[0].op == Op.LD32
    assert instructions[0].rd == 0
    assert instructions[0].rs == 1
    assert instructions[0].imm == 8
    assert instructions[1].op == Op.ST8
    assert instructions[1].rd == 2
    assert instructions[1].rs == 3
    assert instructions[1].imm == 0xFFFFFFFF  # -1 wrapped


def test_character_and_hex_literals():
    program = assemble(
        """
        _start:
            movi r0, 'A'
            movi r1, 0xff
            halt
        """
    )
    instructions = [insn for _, insn in decode_all(program.text)]
    assert instructions[0].imm == ord("A")
    assert instructions[1].imm == 0xFF


def test_align_and_space_directives():
    program = assemble(
        """
        _start:
            halt
        .data
            .byte 1
            .align 4
        table:
            .space 8
        end_table:
        """
    )
    assert program.symbols["table"] % 4 == 0
    assert program.symbols["end_table"] == program.symbols["table"] + 8


def test_bss_directive_reserves_memory():
    program = assemble(
        """
        _start:
            halt
        .bss 4096
        """
    )
    assert program.bss_size == 4096


def test_global_directive_recorded():
    program = assemble(
        """
        .global _start, helper
        _start:
            halt
        helper:
            ret
        """
    )
    assert set(program.globals) == {"_start", "helper"}


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\n nop\na:\n nop\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("_start:\n frobnicate r0, r1\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("_start:\n jmp nowhere\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("_start:\n add r0\n")


def test_comments_and_blank_lines_ignored():
    program = assemble(
        """
        ; full line comment
        # another comment style

        _start:
            nop   ; trailing comment
            halt  # also trailing
        """
    )
    ops = [insn.op for _, insn in decode_all(program.text)]
    assert ops == [Op.NOP, Op.HALT]


def test_disassembler_round_trip_mnemonics():
    source = """
    _start:
        movi r0, 64
        movi r1, 2
        mul  r0, r1
        push r0
        pop  r2
        cmpi r2, 128
        je   good
        halt
    good:
        ret
    """
    program = assemble(source)
    lines = disassemble(program.text, base=program.text_base)
    text = "\n".join(lines)
    for mnemonic in ("movi", "mul", "push", "pop", "cmpi", "je", "halt", "ret"):
        assert mnemonic in text


def test_disassembler_handles_garbage_bytes():
    lines = disassemble(b"\xff\x01", base=0)
    assert any(".byte" in line for line in lines)
    assert any("nop" in line for line in lines)
