"""Unit tests for the guest memory sandbox."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault, ResourceLimitExceeded
from repro.vm.memory import (
    CHECK_FULL,
    CHECK_NONE,
    CHECK_WRITE_ONLY,
    GUEST_ADDRESS_SPACE_LIMIT,
    GuestMemory,
)


def test_basic_load_store_round_trip():
    memory = GuestMemory(4096)
    memory.store32(0, 0x11223344)
    assert memory.load32(0) == 0x11223344
    assert memory.load16u(0) == 0x3344
    assert memory.load8u(3) == 0x11
    memory.store16(100, 0xBEEF)
    assert memory.load16u(100) == 0xBEEF
    memory.store8(200, 0xAB)
    assert memory.load8u(200) == 0xAB


def test_signed_loads():
    memory = GuestMemory(4096)
    memory.store8(0, 0xFF)
    memory.store16(2, 0x8000)
    assert memory.load8s(0) == -1
    assert memory.load16s(2) == -32768
    memory.store8(4, 0x7F)
    assert memory.load8s(4) == 127


def test_little_endian_layout():
    memory = GuestMemory(64)
    memory.store32(0, 0x0A0B0C0D)
    assert memory.load8u(0) == 0x0D
    assert memory.load8u(3) == 0x0A


def test_out_of_bounds_read_faults():
    memory = GuestMemory(4096)
    with pytest.raises(MemoryFault):
        memory.load32(4096)
    with pytest.raises(MemoryFault):
        memory.load32(4093)  # straddles the end
    with pytest.raises(MemoryFault):
        memory.load8u(1 << 20)


def test_out_of_bounds_write_faults():
    memory = GuestMemory(4096)
    with pytest.raises(MemoryFault):
        memory.store8(4096, 1)
    with pytest.raises(MemoryFault):
        memory.store32(4094, 1)


def test_write_only_policy_still_blocks_writes():
    memory = GuestMemory(4096, check_policy=CHECK_WRITE_ONLY)
    with pytest.raises(MemoryFault):
        memory.store32(1 << 20, 1)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        GuestMemory(4096, check_policy="sometimes")


def test_grow_and_limits():
    memory = GuestMemory(4096, limit=16384)
    assert memory.grow(8192) == 8192
    assert memory.size == 8192
    assert memory.grow(100) == 8192  # shrinking is a no-op
    with pytest.raises(ResourceLimitExceeded):
        memory.grow(32768)


def test_size_must_respect_architecture_ceiling():
    with pytest.raises(ValueError):
        GuestMemory(4096, limit=GUEST_ADDRESS_SPACE_LIMIT * 2)
    with pytest.raises(ValueError):
        GuestMemory(0)
    with pytest.raises(ValueError):
        GuestMemory(8192, limit=4096)


def test_bulk_helpers_validate_ranges():
    memory = GuestMemory(4096)
    memory.write_bytes(10, b"abcdef")
    assert memory.read_bytes(10, 6) == b"abcdef"
    with pytest.raises(MemoryFault):
        memory.write_bytes(4090, b"0123456789")
    with pytest.raises(MemoryFault):
        memory.read_bytes(4000, 1000)


def test_read_cstring():
    memory = GuestMemory(4096)
    memory.write_bytes(0, b"hello\x00world")
    assert memory.read_cstring(0) == b"hello"
    assert memory.read_cstring(6) == b"world"


def test_reset_zeroes_memory():
    memory = GuestMemory(4096)
    memory.store32(0, 0xFFFFFFFF)
    memory.reset()
    assert memory.load32(0) == 0


def test_reset_preserves_buffer_identity():
    """Regression: reset() must zero in place, not rebind the bytearray.

    The execution engines (and translated fragments) bind ``memory.buffer``
    directly; a reset that swapped in a fresh bytearray would leave them
    reading stale guest code and writing to dead memory.
    """
    memory = GuestMemory(4096)
    aliased = memory.buffer
    memory.store32(128, 0xDEADBEEF)
    memory.reset()
    assert memory.buffer is aliased
    assert not any(aliased)
    # A grown sandbox keeps both its size and its identity across reset.
    memory.grow(8192)
    grown = memory.buffer
    memory.store8(8000, 7)
    memory.reset()
    assert memory.buffer is grown
    assert memory.size == 8192 and len(memory.buffer) == 8192
    assert memory.load8u(8000) == 0


def test_translator_survives_in_place_memory_reset():
    """An engine binding taken before reset() still sees live memory."""
    from repro.vm.translator import Translator

    memory = GuestMemory(4096)
    # hand-encode: movi r1, 7  (0x10, reg, imm32) ; halt (0x00)
    code = bytes([0x10, 1]) + (7).to_bytes(4, "little") + bytes([0x00])
    memory.write_bytes(0, code)
    translator = Translator(memory, 0, len(code))
    before = translator.translate(0).source
    memory.reset()
    memory.write_bytes(0, code)       # reload the same image in place
    after = translator.translate(0).source
    assert before == after


@given(
    address=st.integers(min_value=0, max_value=4092),
    value=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_store_load_round_trip_property(address, value):
    """Property: any 32-bit value stored in bounds is read back identically."""
    memory = GuestMemory(4096, check_policy=CHECK_FULL)
    memory.store32(address, value)
    assert memory.load32(address) == value


@given(
    address=st.integers(min_value=-(2**31), max_value=2**32),
    size=st.sampled_from([1, 2, 4]),
)
def test_no_access_escapes_the_sandbox_property(address, size):
    """Property: every access is either in bounds or faults; none escapes."""
    memory = GuestMemory(4096)
    loaders = {1: memory.load8u, 2: memory.load16u, 4: memory.load32}
    in_bounds = 0 <= address <= 4096 - size
    try:
        loaders[size](address)
        assert in_bounds
    except MemoryFault:
        assert not in_bounds


def test_check_none_policy_documented_as_unsafe():
    """The 'none' policy exists only for measuring check overhead."""
    memory = GuestMemory(4096, check_policy=CHECK_NONE)
    # Within the backing store it behaves normally.
    memory.store32(0, 5)
    assert memory.load32(0) == 5
    # Past the backing store Python itself still stops reads from escaping,
    # returning short data that triggers a fault rather than silently reading
    # host memory.
    with pytest.raises(MemoryFault):
        memory.load32(8192)
