"""Service-level chaos tests for overload-safe ``vxserve``.

The acceptance drills for the admission layer: exact load shedding under a
full gate, retrying clients riding out the overload, kill-worker/delay-io
faults injected *through the socket* while concurrent clients hammer the
service, circuit breakers opening for a poisoned archive and half-open
probes closing them again, drain/shutdown races, and the bounded
request-line buffer.  Everything runs over the real unix-socket transport
against a real :class:`BatchService` (thread executor: CI-safe, and the
fault hooks simulate worker death in-process).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import socket
import threading
import time

import pytest

import repro.api as vxa
from repro.api.options import EXECUTOR_THREAD
from repro.client import VxServeClient
from repro.parallel.service import BatchService
from repro.workloads import synthetic_log_bytes


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition never became true")


def delay_plan(members, delay: float) -> dict:
    """A wire-format fault plan sleeping ``delay`` before each member."""
    return {"specs": [{"member": name, "kind": "delay-io", "delay": delay}
                      for name in members]}


def kill_plan(member: str) -> dict:
    """A wire-format fault plan killing the worker on ``member``."""
    return {"specs": [{"member": member, "kind": "kill-worker"}]}


class RawConnection:
    """One persistent JSON-lines connection, no retries, no sugar."""

    def __init__(self, path: str):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(60)
        self._sock.connect(path)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def request(self, payload: dict) -> dict:
        self.send_bytes((json.dumps(payload) + "\n").encode())
        return self.read_response()

    def send_bytes(self, data: bytes) -> None:
        self._sock.sendall(data)

    def read_response(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise AssertionError("server dropped the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RawConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def one_shot(path: str, payload: dict) -> dict:
    with RawConnection(path) as connection:
        return connection.request(payload)


@pytest.fixture(scope="module")
def members() -> dict[str, bytes]:
    return {
        f"chaos{index}.txt": synthetic_log_bytes(700 + 80 * index, seed=index)
        for index in range(5)
    }


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, members) -> pathlib.Path:
    path = tmp_path_factory.mktemp("chaos") / "load.zip"
    with vxa.create(path) as builder:
        for name, data in members.items():
            builder.add(name, data, codec="vxz")
    return path


@pytest.fixture()
def serve(tmp_path):
    """Factory: start a BatchService on a unix socket, tear it down after."""
    started: list[tuple[BatchService, threading.Thread]] = []

    def factory(**service_kwargs) -> tuple[BatchService, str]:
        service_kwargs.setdefault("jobs", 2)
        service_kwargs.setdefault("executor", EXECUTOR_THREAD)
        service = BatchService(**service_kwargs)
        socket_path = str(tmp_path / f"chaos{len(started)}.sock")
        thread = threading.Thread(target=service.serve_socket,
                                  args=(socket_path,), daemon=True)
        thread.start()
        wait_until(lambda: os.path.exists(socket_path), timeout=10)
        started.append((service, thread))
        return service, socket_path

    yield factory
    for service, thread in started:
        service._stopping.set()
        thread.join(timeout=1)  # serve_forever poll notices stopping via...
        service.close()


def _assert_extracted(dest: pathlib.Path, members: dict[str, bytes]) -> None:
    for name, data in members.items():
        assert (dest / name).read_bytes() == data, name


# -- overload exactness ---------------------------------------------------------


def test_overload_sheds_exactly_k_and_admits_n(tmp_path, serve, archive_path,
                                               members):
    """With ``max_inflight=N`` and no queue, N+K concurrent extracts yield
    exactly K structured ``overloaded`` rejections, zero dropped
    connections, and the N admitted extractions stay byte-identical."""
    capacity, extra = 2, 3
    service, socket_path = serve(max_inflight=capacity, queue_depth=0)

    holder_responses: dict[int, dict] = {}

    def holder(index: int) -> None:
        holder_responses[index] = one_shot(socket_path, {
            "id": index, "op": "extract", "archive": str(archive_path),
            "dest": str(tmp_path / f"holder{index}"), "mode": "vxa",
            "fault_plan": delay_plan(members, 0.5),
        })

    holders = [threading.Thread(target=holder, args=(index,))
               for index in range(capacity)]
    for thread in holders:
        thread.start()
    wait_until(
        lambda: one_shot(socket_path,
                         {"op": "health"})["result"]["admission"]["inflight"]
        == capacity)

    # The gate is full: every further archive op is shed, structurally.
    rejections = [one_shot(socket_path, {
        "id": 100 + index, "op": "extract", "archive": str(archive_path),
        "dest": str(tmp_path / f"shed{index}"),
    }) for index in range(extra)]
    for response in rejections:
        assert response["ok"] is False
        assert response["error_code"] == "overloaded"
        assert response["error_type"] == "OverloadedError"
        assert response["retry_after_seconds"] > 0

    for thread in holders:
        thread.join(timeout=60)
    for index, response in holder_responses.items():
        assert response["ok"], response
        _assert_extracted(tmp_path / f"holder{index}", members)

    stats = one_shot(socket_path, {"op": "stats"})["result"]
    assert stats["counters"]["shed_overloaded_total"] == extra
    assert stats["counters"]["admitted_total"] == capacity
    assert stats["counters"]["completed_total"] == capacity

    # Phase two: the retrying client rides out the same overload -- all
    # N+K extracts complete even though the gate still holds 2 slots.
    outcomes: dict[int, dict] = {}

    def retrying(index: int) -> None:
        with VxServeClient(socket_path, client_id=f"retry{index}",
                           retries=20, base_delay=0.02, max_delay=0.2,
                           timeout=60) as client:
            outcomes[index] = client.extract(
                str(archive_path), str(tmp_path / f"retry{index}"),
                mode="vxa", fault_plan=delay_plan(members, 0.05))

    swarm = [threading.Thread(target=retrying, args=(index,))
             for index in range(capacity + extra)]
    for thread in swarm:
        thread.start()
    for thread in swarm:
        thread.join(timeout=120)
    assert set(outcomes) == set(range(capacity + extra))
    for index in outcomes:
        _assert_extracted(tmp_path / f"retry{index}", members)


def test_quota_sheds_per_client_over_socket(tmp_path, serve, archive_path,
                                            members):
    service, socket_path = serve(client_quota=1, max_inflight=8)
    with RawConnection(socket_path) as holder:
        holder.send_bytes((json.dumps({
            "id": 1, "op": "extract", "archive": str(archive_path),
            "dest": str(tmp_path / "greedy1"), "client": "greedy",
            "fault_plan": delay_plan(members, 0.4),
        }) + "\n").encode())
        wait_until(lambda: one_shot(
            socket_path, {"op": "health"})["result"]["inflight"] >= 1)
        over = one_shot(socket_path, {
            "op": "check", "archive": str(archive_path), "client": "greedy"})
        assert over["ok"] is False
        assert over["error_code"] == "quota_exceeded"
        assert over["retry_after_seconds"] > 0
        # A different client is not starved by greedy's quota.
        other = one_shot(socket_path, {
            "op": "check", "archive": str(archive_path), "client": "polite"})
        assert other["ok"], other
        first = holder.read_response()
        assert first["ok"], first
    _assert_extracted(tmp_path / "greedy1", members)


# -- chaos under load -----------------------------------------------------------


def test_chaos_under_load_breaker_opens_and_recovers(tmp_path, serve,
                                                     archive_path, members):
    """kill-worker + delay-io through the socket while 4 clients hammer:
    the service stays responsive, the poisoned archive's breaker opens,
    and a half-open probe closes it once the fault is healed."""
    service, socket_path = serve(max_inflight=8, breaker_threshold=2,
                                 breaker_reset=0.5)
    poison_path = tmp_path / "poison.zip"
    shutil.copyfile(archive_path, poison_path)
    poison_member = next(iter(members))

    stop = threading.Event()
    load_errors: list[str] = []
    load_ok = [0] * 4

    def hammer(index: int) -> None:
        with VxServeClient(socket_path, client_id=f"load{index}",
                           retries=20, base_delay=0.02, max_delay=0.2,
                           timeout=60) as client:
            while not stop.is_set():
                try:
                    result = client.check(
                        str(archive_path),
                        fault_plan=delay_plan(list(members)[:2], 0.05))
                except Exception as error:  # noqa: BLE001 - recorded, asserted
                    load_errors.append(f"load{index}: {error!r}")
                    return
                if not result["ok"]:
                    load_errors.append(f"load{index}: check failed {result}")
                    return
                load_ok[index] += 1

    load = [threading.Thread(target=hammer, args=(index,)) for index in range(4)]
    for thread in load:
        thread.start()
    try:
        wait_until(lambda: sum(load_ok) >= 2)

        # Two poisoned extracts (worker killed mid-member) trip the breaker.
        for attempt in range(2):
            response = one_shot(socket_path, {
                "op": "extract", "archive": str(poison_path),
                "dest": str(tmp_path / f"poison{attempt}"),
                "fault_plan": kill_plan(poison_member),
            })
            assert response["ok"] is False
            assert "error_code" not in response  # a real failure, not a shed

        tripped = one_shot(socket_path, {
            "op": "extract", "archive": str(poison_path),
            "dest": str(tmp_path / "poison-tripped"),
        })
        assert tripped["ok"] is False
        assert tripped["error_code"] == "circuit_open"
        assert tripped["retry_after_seconds"] > 0

        # Under all of that, control ops still answer promptly.
        started = time.monotonic()
        health = one_shot(socket_path, {"op": "health"})["result"]
        assert time.monotonic() - started < 10
        assert health["ok"] is True and health["accepting"] is True
        assert health["breakers"][str(poison_path)]["state"] == "open"

        # Heal: after the cool-down a clean request is let through as the
        # half-open probe, succeeds, and closes the breaker.
        time.sleep(0.7)
        probe = one_shot(socket_path, {
            "op": "extract", "archive": str(poison_path),
            "dest": str(tmp_path / "healed"),
        })
        assert probe["ok"], probe
        healed = one_shot(socket_path, {"op": "health"})["result"]
        assert healed["breakers"][str(poison_path)]["state"] == "closed"
    finally:
        stop.set()
        for thread in load:
            thread.join(timeout=60)

    assert load_errors == []
    assert all(count > 0 for count in load_ok), load_ok
    _assert_extracted(tmp_path / "healed", members)
    counters = one_shot(socket_path, {"op": "stats"})["result"]["counters"]
    assert counters["breaker_trips_total"] >= 1
    assert counters["breaker_rejections_total"] >= 1


# -- drain / shutdown races -----------------------------------------------------


def test_concurrent_drain_inflight_and_new_submissions(tmp_path, archive_path,
                                                       members):
    """Drain racing an in-flight extract and fresh submissions: the extract
    finishes intact, both drains complete (idempotent), and every late
    submission gets a structured ``draining`` rejection -- zero responses
    lost, zero crashes."""
    service = BatchService(jobs=2, executor=EXECUTOR_THREAD)
    try:
        responses: dict[str, dict] = {}

        def inflight_extract() -> None:
            responses["extract"] = service.handle({
                "op": "extract", "archive": str(archive_path),
                "dest": str(tmp_path / "inflight"), "mode": "vxa",
                "fault_plan": delay_plan(members, 0.3),
            })

        def drainer(tag: str) -> None:
            responses[tag] = service.handle({"op": "drain"})

        extract = threading.Thread(target=inflight_extract)
        extract.start()
        wait_until(
            lambda: service.handle({"op": "health"})["result"]["inflight"] >= 1)

        drains = [threading.Thread(target=drainer, args=(f"drain{index}",))
                  for index in range(2)]
        for thread in drains:
            thread.start()
        wait_until(
            lambda: service.handle({"op": "health"})["result"]["draining"])

        submissions = [service.handle({
            "id": index, "op": "check", "archive": str(archive_path),
        }) for index in range(3)]

        extract.join(timeout=60)
        for thread in drains:
            thread.join(timeout=60)

        assert responses["extract"]["ok"], responses["extract"]
        _assert_extracted(tmp_path / "inflight", members)
        for tag in ("drain0", "drain1"):
            assert responses[tag]["ok"]
            assert responses[tag]["result"]["draining"] is True
            assert responses[tag]["result"]["drained"] is True
            assert responses[tag]["result"]["inflight"] == 0
        for response in submissions:
            assert response["ok"] is False
            assert response["error_code"] == "draining"
            assert response["error_type"] == "DrainingError"

        # Drain after drain is a cheap no-op, and control ops still serve.
        again = service.handle({"op": "drain"})
        assert again["ok"] and again["result"]["drained"] is True
        assert service.handle({"op": "ping"})["ok"]
        stats = service.handle({"op": "stats"})["result"]
        assert stats["counters"]["rejected_draining_total"] == 3
    finally:
        service.close()


def test_drain_waits_for_queued_but_unadmitted_work(tmp_path, serve,
                                                    archive_path, members):
    """A request waiting in the admission queue is in-flight for drain
    purposes: drain must wait for it, not strand it."""
    service, socket_path = serve(max_inflight=1, queue_depth=2,
                                 queue_timeout=30.0)
    responses: dict[str, dict] = {}

    def submit(tag: str, delay: float) -> None:
        responses[tag] = one_shot(socket_path, {
            "op": "extract", "archive": str(archive_path),
            "dest": str(tmp_path / tag), "mode": "vxa",
            "fault_plan": delay_plan(members, delay),
        })

    first = threading.Thread(target=submit, args=("first", 0.3))
    first.start()
    wait_until(lambda: one_shot(
        socket_path, {"op": "health"})["result"]["admission"]["inflight"] == 1)
    queued = threading.Thread(target=submit, args=("queued", 0.0))
    queued.start()
    wait_until(lambda: one_shot(
        socket_path, {"op": "health"})["result"]["admission"]["queued_now"] == 1)

    drained = one_shot(socket_path, {"op": "drain"})
    first.join(timeout=60)
    queued.join(timeout=60)
    assert drained["ok"] and drained["result"]["drained"] is True
    assert responses["first"]["ok"], responses["first"]
    assert responses["queued"]["ok"], responses["queued"]
    _assert_extracted(tmp_path / "first", members)
    _assert_extracted(tmp_path / "queued", members)


# -- bounded request lines ------------------------------------------------------


def test_oversized_request_line_is_rejected_not_buffered(serve, archive_path):
    service, socket_path = serve(max_request_bytes=1024)
    with RawConnection(socket_path) as connection:
        padding = "x" * 4096
        connection.send_bytes((json.dumps(
            {"id": 7, "op": "ping", "padding": padding}) + "\n").encode())
        response = connection.read_response()
        assert response["ok"] is False
        assert response["error_code"] == "request_too_large"
        assert response["error_type"] == "RequestTooLargeError"
        # The connection survives and the stream stays in sync.
        follow_up = connection.request({"id": 8, "op": "ping"})
        assert follow_up["ok"] and follow_up["id"] == 8
        assert follow_up["result"]["pong"] is True
    stats = one_shot(socket_path, {"op": "stats"})["result"]
    assert stats["counters"]["oversized_requests_total"] == 1


def test_oversized_line_without_newline_then_eof(serve):
    """A peer that sends a giant line and hangs up mid-line must not wedge
    the reader thread or crash the service."""
    service, socket_path = serve(max_request_bytes=512)
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as abuser:
        abuser.connect(socket_path)
        abuser.sendall(b"y" * 2048)     # no newline, then EOF
        abuser.shutdown(socket.SHUT_WR)
        data = abuser.recv(65536)
    response = json.loads(data)
    assert response["ok"] is False
    assert response["error_code"] == "request_too_large"
    # The service is still fully alive for the next client.
    assert one_shot(socket_path, {"op": "ping"})["ok"]


# -- media damage over the socket -------------------------------------------------


def test_damaged_archive_yields_structured_failures_not_crashes(
        tmp_path, serve, archive_path, members):
    """A damaged archive never kills a worker or wedges the service.

    Salvage mode returns per-member structured failures with the healthy
    members extracted; reject mode returns ``error_code="archive_damaged"``
    (which the client treats as final, not retryable).  Either way the
    service keeps answering afterwards.
    """
    from repro.faults.media import flip_bytes
    from repro.zipformat.reader import ZipReader

    data = archive_path.read_bytes()
    reader = ZipReader(data)
    victim = next(entry for entry in reader.entries
                  if entry.name == "chaos2.txt")
    start, size = reader.member_extent(victim)
    damaged = tmp_path / "damaged.zip"
    damaged.write_bytes(flip_bytes(data, start + size - 16, 8, seed=5))

    service, socket_path = serve(jobs=2)
    dest = tmp_path / "salvage-out"
    response = one_shot(socket_path, {
        "id": 1, "op": "extract", "archive": str(damaged),
        "dest": str(dest), "on_damage": "salvage",
    })
    assert response["ok"], response
    assert [f["name"] for f in response["result"]["failures"]] == ["chaos2.txt"]
    survivors = {r["name"] for r in response["result"]["records"]}
    assert survivors == set(members) - {"chaos2.txt"}
    for name in survivors:
        assert (dest / name).read_bytes() == members[name]
    assert response["result"]["stats"]["members_salvaged"] >= 1

    rejected = one_shot(socket_path, {
        "id": 2, "op": "extract", "archive": str(damaged),
        "dest": str(tmp_path / "reject-out"),
    })
    assert not rejected["ok"]
    assert rejected["error_code"] == "archive_damaged"

    # The worker pool survived both; a clean archive still extracts.
    after = one_shot(socket_path, {
        "id": 3, "op": "extract", "archive": str(archive_path),
        "dest": str(tmp_path / "after-out"),
    })
    assert after["ok"], after
    assert not after["result"]["failures"]
    _assert_extracted(tmp_path / "after-out", members)


def test_torn_archive_rejected_with_archive_damaged_code(tmp_path, serve,
                                                         archive_path):
    from repro.faults.media import truncate_tail

    torn = tmp_path / "torn.zip"
    torn.write_bytes(truncate_tail(archive_path.read_bytes(), 200))
    service, socket_path = serve(jobs=2)
    response = one_shot(socket_path, {
        "id": 1, "op": "extract", "archive": str(torn),
        "dest": str(tmp_path / "out"),
    })
    assert not response["ok"]
    assert response["error_code"] == "archive_damaged"
    assert one_shot(socket_path, {"id": 2, "op": "ping"})["ok"]
