"""Tests for the uncompressed container formats, workload generators and
bench-support modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.reporting import banner, format_kb, format_percent, format_ratio, format_table
from repro.bench.timelines import (
    COMPRESSION_FORMATS,
    PROCESSOR_ARCHITECTURES,
    events_per_decade,
    format_churn_summary,
)
from repro.errors import FormatError
from repro.formats.bmp import is_bmp, read_bmp, write_bmp
from repro.formats.ppm import is_ppm, read_ppm, write_ppm
from repro.formats.sniff import KIND_COMPRESSED, KIND_RAW_AUDIO, KIND_RAW_IMAGE, KIND_RAW_TEXT, sniff
from repro.formats.wav import WavAudio, is_wav, read_wav, write_wav
from repro.vm.limits import ExecutionStats
from repro.vm.profiler import cache_hit_rate, format_report, instructions_per_output_byte, summarize
from repro.workloads.audio import synthetic_music, synthetic_speech
from repro.workloads.images import synthetic_diagram, synthetic_photo
from repro.workloads.text import synthetic_log_bytes, synthetic_source_file, synthetic_source_tree_bytes


# -- BMP ---------------------------------------------------------------------------


def test_bmp_round_trip():
    pixels = synthetic_photo(37, 23, seed=1)
    data = write_bmp(pixels)
    assert is_bmp(data)
    assert np.array_equal(read_bmp(data), pixels)


def test_bmp_row_padding_and_bottom_up_layout():
    pixels = np.zeros((2, 3, 3), dtype=np.uint8)
    pixels[0, 0] = (255, 0, 0)            # top-left red
    data = write_bmp(pixels)
    # stride = 3*3 rounded up to 12; bottom row written first.
    assert len(data) == 54 + 12 * 2
    # Top-left pixel is the first pixel of the *second* stored row, BGR order.
    assert data[54 + 12 : 54 + 15] == bytes([0, 0, 255])


def test_bmp_rejects_garbage():
    with pytest.raises(FormatError):
        read_bmp(b"not a bitmap")
    with pytest.raises(FormatError):
        write_bmp(np.zeros((4, 4), dtype=np.uint8))


# -- WAV ---------------------------------------------------------------------------


def test_wav_round_trip_stereo():
    audio = synthetic_music(seconds=0.1, sample_rate=8000, channels=2, seed=2)
    data = write_wav(audio)
    assert is_wav(data)
    parsed = read_wav(data)
    assert parsed.sample_rate == 8000
    assert parsed.channels == 2
    assert np.array_equal(parsed.samples, audio.samples)
    assert parsed.duration_seconds == pytest.approx(0.1, abs=0.01)


def test_wav_mono_vector_is_reshaped():
    samples = np.arange(-50, 50, dtype=np.int16)
    data = write_wav(WavAudio(sample_rate=1000, samples=samples))
    parsed = read_wav(data)
    assert parsed.samples.shape == (100, 1)


def test_wav_rejects_non_pcm():
    audio = synthetic_music(seconds=0.05, sample_rate=8000, channels=1, seed=3)
    data = bytearray(write_wav(audio))
    data[20] = 3                        # format tag != PCM
    with pytest.raises(FormatError):
        read_wav(bytes(data))
    with pytest.raises(FormatError):
        read_wav(b"RIFFxxxxWAVE")


# -- PPM ---------------------------------------------------------------------------


def test_ppm_round_trip_and_comments():
    pixels = synthetic_diagram(19, 11, seed=4)
    data = write_ppm(pixels)
    assert is_ppm(data)
    assert np.array_equal(read_ppm(data), pixels)
    commented = b"P6\n# a comment line\n19 11\n255\n" + data.split(b"255\n", 1)[1]
    assert np.array_equal(read_ppm(commented), pixels)


def test_ppm_rejects_truncated():
    pixels = synthetic_photo(8, 8, seed=5)
    data = write_ppm(pixels)
    with pytest.raises(FormatError):
        read_ppm(data[:-10])


# -- sniffing -----------------------------------------------------------------------


def test_sniff_classifies_content():
    from repro.codecs.vxz import VxzCodec

    assert sniff(b"hello world").kind == KIND_RAW_TEXT
    assert sniff(write_ppm(synthetic_photo(8, 8, seed=6))).kind == KIND_RAW_IMAGE
    assert sniff(write_wav(synthetic_music(seconds=0.05, sample_rate=8000,
                                           channels=1, seed=7))).kind == KIND_RAW_AUDIO
    compressed = VxzCodec().encode(b"some data to compress")
    result = sniff(compressed)
    assert result.kind == KIND_COMPRESSED
    assert result.codec_name == "vxz"


# -- workloads -----------------------------------------------------------------------


def test_source_tree_workload_is_deterministic_and_compressible():
    a = synthetic_source_tree_bytes(30000, seed=9)
    b = synthetic_source_tree_bytes(30000, seed=9)
    c = synthetic_source_tree_bytes(30000, seed=10)
    assert a == b
    assert a != c
    assert len(a) == 30000
    import zlib

    assert len(zlib.compress(a, 6)) < len(a) // 2      # source-like redundancy


def test_source_file_and_log_generators():
    source = synthetic_source_file(4000, seed=11)
    assert "static int" in source
    assert len(source) == 4000
    log = synthetic_log_bytes(5000, seed=12)
    assert len(log) == 5000
    assert b"kernel" in log or b"daemon" in log


def test_photo_and_diagram_workloads():
    photo = synthetic_photo(33, 17, seed=13)
    assert photo.shape == (17, 33, 3)
    assert photo.dtype == np.uint8
    assert photo.std() > 5                      # has actual structure
    diagram = synthetic_diagram(40, 20, seed=14)
    assert diagram.shape == (20, 40, 3)
    assert np.array_equal(synthetic_photo(33, 17, seed=13), photo)   # deterministic


def test_audio_workloads():
    music = synthetic_music(seconds=0.2, sample_rate=8000, channels=2, seed=15)
    assert music.samples.shape == (1600, 2)
    assert np.abs(music.samples).max() > 1000    # not silence
    speech = synthetic_speech(seconds=0.3, sample_rate=8000, seed=16)
    assert speech.samples.shape[1] == 1


# -- bench support ---------------------------------------------------------------------


def test_timeline_datasets_and_churn_summary():
    assert len(COMPRESSION_FORMATS) >= 15
    assert len(PROCESSOR_ARCHITECTURES) >= 10
    summary = format_churn_summary()
    assert summary["churn_ratio"] > 1.0
    per_decade = events_per_decade(COMPRESSION_FORMATS)
    assert sum(per_decade.values()) == len(COMPRESSION_FORMATS)


def test_reporting_helpers():
    table = format_table(["a", "b"], [[1, "xx"], [22, "y"]], title="T")
    assert "T" in table and "22" in table
    assert format_kb(2048) == "2.0KB"
    assert format_percent(0.125) == "12.5%"
    assert format_ratio(1.5) == "1.50x"
    assert "hello" in banner("hello")


def test_profiler_summaries():
    stats = ExecutionStats(
        instructions=1000,
        blocks_executed=100,
        fragments_translated=10,
        fragment_cache_hits=90,
        fragment_cache_misses=10,
        bytes_read=50,
        bytes_written=200,
    )
    stats.record_syscall("read")
    stats.record_syscall("read")
    assert cache_hit_rate(stats) == 0.9
    assert instructions_per_output_byte(stats) == 5.0
    summary = summarize(stats)
    assert summary["syscalls"] == {"read": 2}
    assert "instructions" in format_report(stats)
    other = ExecutionStats(instructions=10)
    other.record_syscall("write")
    stats.merge(other)
    assert stats.instructions == 1010
    assert stats.syscalls["write"] == 1


@settings(max_examples=20)
@given(
    width=st.integers(min_value=1, max_value=24),
    height=st.integers(min_value=1, max_value=24),
)
def test_bmp_round_trip_property(width, height):
    rng = np.random.default_rng(width * 100 + height)
    pixels = rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
    assert np.array_equal(read_bmp(write_bmp(pixels)), pixels)
