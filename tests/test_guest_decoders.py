"""Equivalence tests: archived guest decoders vs. native Python decoders.

This is the core correctness property of the VXA architecture: data encoded
by the archiver's native encoders must be decodable by the *archived* decoder
running inside the virtual machine -- without any codec knowledge on the
reader's side -- and the result must match what the native decoder produces.
"""

import numpy as np
import pytest

from repro.codecs.registry import default_registry
from repro.codecs.vxbwt import VxbwtCodec
from repro.codecs.vxflac import VxflacCodec
from repro.codecs.vximg import VximgCodec
from repro.codecs.vxjp2 import Vxjp2Codec
from repro.codecs.vxsnd import VxsndCodec
from repro.codecs.vxz import VxzCodec
from repro.elf.reader import is_vxa_executable, read_note
from repro.formats.bmp import read_bmp
from repro.formats.wav import read_wav, write_wav
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_source_tree_bytes


def run_guest(codec, encoded: bytes, engine: str = ENGINE_TRANSLATOR):
    vm = VirtualMachine(codec.guest_decoder_image(), engine=engine)
    result = vm.decode(encoded)
    assert result.exit_code == 0, result.stderr
    return result


# -- decoder images are well-formed ELF executables ------------------------------


@pytest.mark.parametrize("name", ["vxz", "vxbwt", "vximg", "vxjp2", "vxflac", "vxsnd"])
def test_guest_decoder_is_valid_vxa_elf(name):
    codec = default_registry().get(name)
    image = codec.guest_decoder_image()
    assert is_vxa_executable(image)
    note = read_note(image)
    assert note["codec"] == name
    assert note["decoder_code_bytes"] > 0
    assert note["library_code_bytes"] > 0
    assert note["output_format"] == codec.info.output_format


# -- general-purpose codecs -------------------------------------------------------


def test_vxz_guest_matches_native_text():
    codec = VxzCodec()
    data = synthetic_source_tree_bytes(24000, seed=21)
    encoded = codec.encode(data)
    result = run_guest(codec, encoded)
    assert result.output == data
    assert result.output == codec.decode(encoded)


def test_vxz_guest_handles_tiny_and_empty_streams():
    codec = VxzCodec()
    for data in (b"", b"x", b"hello hello hello hello hello"):
        assert run_guest(codec, codec.encode(data)).output == data


def test_vxz_guest_incompressible_data():
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=8000, dtype=np.uint8).tobytes()
    codec = VxzCodec()
    assert run_guest(codec, codec.encode(data)).output == data


def test_vxbwt_guest_matches_native_text():
    codec = VxbwtCodec(block_size=8 * 1024)
    data = synthetic_source_tree_bytes(20000, seed=22)
    encoded = codec.encode(data)
    result = run_guest(codec, encoded)
    assert result.output == data


def test_vxbwt_guest_multi_block_and_runs():
    codec = VxbwtCodec(block_size=2048)
    data = b"abc" * 1000 + b"\x00" * 3000 + synthetic_source_tree_bytes(3000, seed=23)
    assert run_guest(codec, codec.encode(data)).output == data


def test_vxbwt_guest_empty_stream():
    codec = VxbwtCodec()
    assert run_guest(codec, codec.encode(b"")).output == b""


# -- image codecs ----------------------------------------------------------------


def test_vximg_guest_matches_native_bmp_exactly():
    codec = VximgCodec(quality=70)
    pixels = synthetic_photo(64, 56, seed=24)
    encoded = codec.encode_pixels(pixels)
    result = run_guest(codec, encoded)
    native = codec.decode(encoded)
    assert result.output == native
    decoded = read_bmp(result.output)
    assert decoded.shape == pixels.shape


def test_vximg_guest_odd_dimensions():
    codec = VximgCodec(quality=85)
    pixels = synthetic_photo(21, 13, seed=25)
    encoded = codec.encode_pixels(pixels)
    assert run_guest(codec, encoded).output == codec.decode(encoded)


def test_vxjp2_guest_matches_native_bmp_exactly():
    codec = Vxjp2Codec(quality=70, levels=3)
    pixels = synthetic_photo(48, 40, seed=26)
    encoded = codec.encode_pixels(pixels)
    result = run_guest(codec, encoded)
    assert result.output == codec.decode(encoded)


def test_vxjp2_guest_lossless_mode_recovers_pixels():
    codec = Vxjp2Codec(quality=100, levels=2)
    pixels = synthetic_photo(36, 28, seed=27)
    encoded = codec.encode_pixels(pixels)
    decoded = read_bmp(run_guest(codec, encoded).output)
    assert np.array_equal(decoded, pixels)


# -- audio codecs ----------------------------------------------------------------


def test_vxflac_guest_matches_native_wav_exactly():
    codec = VxflacCodec(block_size=512)
    audio = synthetic_music(seconds=0.4, sample_rate=16000, channels=2, seed=28)
    encoded = codec.encode(write_wav(audio))
    result = run_guest(codec, encoded)
    assert result.output == codec.decode(encoded)
    decoded = read_wav(result.output)
    assert np.array_equal(decoded.samples, audio.samples)      # lossless end to end


def test_vxflac_guest_mono():
    codec = VxflacCodec(block_size=256)
    audio = synthetic_music(seconds=0.2, sample_rate=8000, channels=1, seed=29)
    encoded = codec.encode(write_wav(audio))
    assert run_guest(codec, encoded).output == codec.decode(encoded)


def test_vxsnd_guest_matches_native_wav_exactly():
    codec = VxsndCodec(block_size=512)
    audio = synthetic_music(seconds=0.3, sample_rate=16000, channels=2, seed=30)
    encoded = codec.encode(write_wav(audio))
    result = run_guest(codec, encoded)
    assert result.output == codec.decode(encoded)


# -- cross-engine agreement and VM reuse --------------------------------------------


def test_guest_decoder_interpreter_and_translator_agree():
    codec = VxzCodec()
    data = synthetic_source_tree_bytes(6000, seed=31)
    encoded = codec.encode(data)
    translated = run_guest(codec, encoded, engine=ENGINE_TRANSLATOR).output
    interpreted = run_guest(codec, encoded, engine=ENGINE_INTERPRETER).output
    assert translated == interpreted == data


def test_guest_decoder_done_protocol_for_multiple_streams():
    codec = VxzCodec()
    streams = [
        codec.encode(synthetic_source_tree_bytes(size, seed=40 + size))
        for size in (1500, 4000, 800)
    ]
    vm = VirtualMachine(codec.guest_decoder_image())
    results = vm.decode_many(streams)
    assert len(results) == 3
    for result, size in zip(results, (1500, 4000, 800)):
        assert len(result.output) == size


def test_guest_decoder_rejects_corrupt_stream_without_harming_host():
    codec = VxzCodec()
    data = synthetic_source_tree_bytes(3000, seed=32)
    encoded = bytearray(codec.encode(data))
    encoded[400] ^= 0xFF           # flip bits inside the Huffman-coded body
    vm = VirtualMachine(codec.guest_decoder_image())
    result = vm.decode(bytes(encoded))
    # The decoder either detects corruption (non-zero exit) or produces wrong
    # data; in no case does the host fault, and the VM remains reusable.
    if result.exit_code == 0:
        assert result.output != data
    clean = vm.decode(bytes(codec.encode(data)))
    assert clean.output == data
