"""The AST lock-linter: the repo is clean, and violations are detected.

``tools/lint_locks.py`` guards two concurrency invariants (CodeCache state
mutations under ``self.lock``; ``_CODE_MEMO`` accesses under
``_CODE_MEMO_LOCK``).  These tests pin both directions: the shipped sources
pass, and deliberately broken synthetic sources fail with pointed messages.
"""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_locks  # noqa: E402


def test_repository_is_clean():
    assert lint_locks.run() == []


def _cache_violations(tmp_path, body: str):
    path = tmp_path / "code_cache.py"
    path.write_text(body)
    return lint_locks.check_code_cache(path)


def test_detects_unlocked_counter_increment(tmp_path):
    violations = _cache_violations(tmp_path, """
class CodeCache:
    def record(self):
        self.hits += 1
""")
    assert len(violations) == 1
    assert "self.hits" in violations[0][2]


def test_detects_unlocked_mutation_through_alias(tmp_path):
    violations = _cache_violations(tmp_path, """
class CodeCache:
    def store(self, entry, fragment):
        fragments = self.fragments
        fragments[entry] = fragment
""")
    assert len(violations) == 1
    assert "self.fragments" in violations[0][2]


def test_detects_unlocked_mutating_method_call(tmp_path):
    violations = _cache_violations(tmp_path, """
class CodeCache:
    def wipe(self):
        self.known.clear()
""")
    assert len(violations) == 1
    assert "self.known.clear()" in violations[0][2]


def test_locked_mutations_pass(tmp_path):
    violations = _cache_violations(tmp_path, """
class CodeCache:
    def store(self, entry, fragment):
        with self.lock:
            fragments = self.fragments
            del fragments[next(iter(fragments))]
            self.fragments[entry] = fragment
            self.evictions += 1
""")
    assert violations == []


def test_init_is_exempt_and_reads_are_free(tmp_path):
    violations = _cache_violations(tmp_path, """
class CodeCache:
    def __init__(self):
        self.fragments = {}
        self.hits = 0

    def lookup(self, entry):
        return self.fragments.get(entry)
""")
    assert violations == []


@pytest.mark.parametrize("snippet,expect_clean", [
    ("_CODE_MEMO = {}\n", True),                      # definition site
    ("with _CODE_MEMO_LOCK:\n    _CODE_MEMO['k'] = 1\n", True),
    ("_CODE_MEMO['k'] = 1\n", False),
    ("value = _CODE_MEMO.get('k')\n", False),
])
def test_code_memo_access_rules(tmp_path, snippet, expect_clean):
    path = tmp_path / "translator.py"
    path.write_text(snippet)
    violations = lint_locks.check_code_memo(path)
    assert (violations == []) is expect_clean
