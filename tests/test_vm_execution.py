"""Integration tests for the VM execution engines (interpreter and translator).

Every behavioural test runs under both engines: the translator must be
observationally identical to the reference interpreter.
"""

import pytest

from repro.errors import (
    DivisionFault,
    GuestFault,
    IllegalInstructionFault,
    MemoryFault,
    ResourceLimitExceeded,
)
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine

from tests.conftest import build_asm

ENGINES = [ENGINE_TRANSLATOR, ENGINE_INTERPRETER]


def run_asm(source: str, engine: str, stdin: bytes = b"", **vm_kwargs):
    """Assemble, load and run a guest program; return (exit_code, result)."""
    vm = VirtualMachine(build_asm(source), engine=engine, **vm_kwargs)
    result = vm.decode(stdin)
    return result


ARITH_PROGRAM = """
; compute ((7 * 6) + 58 - 4) / 2 = 48 and write the single byte '0' (0x30)
_start:
    movi r1, 7
    movi r2, 6
    mul  r1, r2
    addi r1, 58
    subi r1, 4
    movi r2, 2
    divu r1, r2
    movi r2, buffer
    st8  [r2], r1
    movi r0, 2        ; WRITE
    movi r1, 1
    movi r3, 1
    vxcall
    movi r0, 0        ; EXIT
    movi r1, 0
    vxcall
.data
buffer:
    .byte 0
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_arithmetic_and_write(engine):
    result = run_asm(ARITH_PROGRAM, engine)
    assert result.exit_code == 0
    assert result.output == b"0"


@pytest.mark.parametrize("engine", ENGINES)
def test_echo_decoder_copies_stdin_to_stdout(engine, echo_decoder_image):
    vm = VirtualMachine(echo_decoder_image, engine=engine)
    payload = bytes(range(256)) * 40
    result = vm.decode(payload)
    assert result.exit_code == 0
    assert result.output == payload
    assert result.stats.bytes_read == len(payload)
    assert result.stats.bytes_written == len(payload)


@pytest.mark.parametrize("engine", ENGINES)
def test_loop_and_conditionals(engine):
    # Sum 1..100 = 5050 = 0x13BA; store and exit with code 0 if correct.
    source = """
    _start:
        movi r1, 0        ; sum
        movi r2, 1        ; i
    loop:
        add  r1, r2
        addi r2, 1
        cmpi r2, 100
        jleu loop
        cmpi r1, 5050
        je   ok
        movi r1, 1
        jmp  out
    ok:
        movi r1, 0
    out:
        movi r0, 0
        vxcall
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_signed_comparisons_and_division(engine):
    # (-7) / 2 == -3 (C truncation); compare signed -3 < 1.
    source = """
    _start:
        movi r1, 0xfffffff9   ; -7
        movi r2, 2
        divs r1, r2
        cmpi r1, 0xfffffffd   ; -3
        jne  bad
        movi r3, 0xffffffff   ; -1
        cmpi r3, 1
        jlts good
    bad:
        movi r1, 1
        jmp  out
    good:
        movi r1, 0
    out:
        movi r0, 0
        vxcall
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_call_ret_and_stack(engine):
    source = """
    _start:
        movi r1, 5
        call double
        call double
        cmpi r1, 20
        je   ok
        movi r1, 1
        jmp  out
    ok:
        movi r1, 0
    out:
        movi r0, 0
        vxcall
    double:
        push r2
        movi r2, 2
        mul  r1, r2
        pop  r2
        ret
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_indirect_call_through_register(engine):
    source = """
    _start:
        movi r4, target
        callr r4
        cmpi r1, 99
        je   ok
        movi r1, 1
        jmp  out
    ok:
        movi r1, 0
    out:
        movi r0, 0
        vxcall
    target:
        movi r1, 99
        ret
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_byte_and_halfword_memory_ops(engine):
    source = """
    _start:
        movi r1, buffer
        movi r2, 0x1234
        st16 [r1], r2
        ld8u r3, [r1]
        cmpi r3, 0x34
        jne  bad
        ld8u r3, [r1+1]
        cmpi r3, 0x12
        jne  bad
        movi r2, 0xff
        st8  [r1+2], r2
        ld8s r3, [r1+2]
        cmpi r3, 0xffffffff
        jne  bad
        movi r1, 0
        jmp  out
    bad:
        movi r1, 1
    out:
        movi r0, 0
        vxcall
    .data
    buffer:
        .space 16
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_shift_semantics(engine):
    source = """
    _start:
        movi r1, 0x80000000
        shrsi r1, 31
        cmpi r1, 0xffffffff   ; arithmetic shift keeps the sign
        jne  bad
        movi r1, 0x80000000
        shrui r1, 31
        cmpi r1, 1
        jne  bad
        movi r1, 1
        shli r1, 31
        cmpi r1, 0x80000000
        jne  bad
        movi r1, 0
        jmp  out
    bad:
        movi r1, 1
    out:
        movi r0, 0
        vxcall
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_exit_code_propagates(engine):
    source = """
    _start:
        movi r0, 0
        movi r1, 42
        vxcall
    """
    result = run_asm(source, engine)
    assert result.exit_code == 42


@pytest.mark.parametrize("engine", ENGINES)
def test_halt_is_a_clean_stop(engine):
    result = run_asm("_start:\n halt\n", engine)
    assert result.exit_code == 0


# -- fault isolation ----------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_wild_store_faults_but_host_survives(engine):
    source = """
    _start:
        movi r1, 0x40000000   ; 1 GB, far outside the sandbox
        movi r2, 0xdead
        st32 [r1], r2
        halt
    """
    with pytest.raises(MemoryFault):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_wild_read_faults(engine):
    source = """
    _start:
        movi r1, 0x3fffffff
        ld32 r2, [r1]
        halt
    """
    with pytest.raises(MemoryFault):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_division_by_zero_faults(engine):
    source = """
    _start:
        movi r1, 10
        movi r2, 0
        divu r1, r2
        halt
    """
    with pytest.raises(DivisionFault):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_jump_outside_code_segment_faults(engine):
    source = """
    _start:
        movi r1, 0x300000
        jmpr r1
    """
    with pytest.raises((IllegalInstructionFault, GuestFault)):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_jump_into_data_segment_faults(engine):
    source = """
    _start:
        movi r1, blob
        jmpr r1
    .data
    blob:
        .word 0xffffffff
    """
    with pytest.raises(GuestFault):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_per_run_limits_are_enforced_by_the_engines(engine, echo_decoder_image):
    """Regression: limits passed to decode() (e.g. input-scaled budgets) must
    bound the run, not just the syscall layer."""
    vm = VirtualMachine(echo_decoder_image, engine=engine)
    with pytest.raises(ResourceLimitExceeded):
        vm.decode(b"x" * 4096, limits=ExecutionLimits(max_instructions=10))


def test_scaled_limits_never_exceed_configured_ceilings():
    limits = ExecutionLimits(max_instructions=10_000, max_output_bytes=2048)
    scaled = limits.scaled_for_input(1 << 20)
    assert scaled.max_instructions == 10_000
    assert scaled.max_output_bytes == 2048
    # With default (huge) ceilings the input-proportional floor applies.
    default_scaled = ExecutionLimits().scaled_for_input(0)
    assert default_scaled.max_instructions == 200_000_000


def test_reset_reuses_sandbox_buffer_in_place(echo_decoder_image):
    """Back-to-back fresh decodes zero the same sandbox instead of paying a
    reallocation -- and engine-held buffer bindings therefore stay live."""
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    buffer = vm.memory.buffer
    first = vm.decode(b"abc")
    second = vm.decode(b"xyz")
    assert (first.output, second.output) == (b"abc", b"xyz")
    assert vm.memory.buffer is buffer


@pytest.mark.parametrize("engine", ENGINES)
def test_infinite_loop_hits_instruction_budget(engine):
    source = """
    _start:
    spin:
        jmp spin
    """
    limits = ExecutionLimits(max_instructions=10_000)
    with pytest.raises(ResourceLimitExceeded):
        run_asm(source, engine, limits=limits)


@pytest.mark.parametrize("engine", ENGINES)
def test_output_budget_enforced(engine, echo_decoder_image):
    vm = VirtualMachine(
        echo_decoder_image,
        engine=engine,
        limits=ExecutionLimits(max_output_bytes=1024),
    )
    with pytest.raises(ResourceLimitExceeded):
        vm.decode(b"x" * 8192, limits=ExecutionLimits(max_output_bytes=1024))


@pytest.mark.parametrize("engine", ENGINES)
def test_vm_usable_after_guest_fault(engine, echo_decoder_image):
    bad = """
    _start:
        movi r1, 0x20000000
        ld32 r2, [r1]
        halt
    """
    vm = VirtualMachine(build_asm(bad), engine=engine)
    with pytest.raises(MemoryFault):
        vm.decode(b"")
    # The same VM object can be reset and used again.
    vm.reset()
    with pytest.raises(MemoryFault):
        vm.decode(b"")


# -- syscall surface -----------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_unknown_fd_returns_ebadf_not_host_access(engine):
    source = """
    _start:
        movi r0, 2         ; WRITE
        movi r1, 7         ; not one of the three virtual handles
        movi r2, buffer
        movi r3, 4
        vxcall
        cmpi r0, 0xfffffff7   ; EBADF (-9)
        je   ok
        movi r1, 1
        jmp  out
    ok:
        movi r1, 0
    out:
        movi r0, 0
        vxcall
    .data
    buffer:
        .ascii "data"
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_invalid_syscall_number_faults(engine):
    source = """
    _start:
        movi r0, 99
        vxcall
        halt
    """
    with pytest.raises(GuestFault):
        run_asm(source, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_stderr_is_captured_separately(engine):
    source = """
    _start:
        movi r0, 2
        movi r1, 2          ; stderr
        movi r2, message
        movi r3, 5
        vxcall
        movi r0, 0
        movi r1, 0
        vxcall
    .data
    message:
        .ascii "oops!"
    """
    result = run_asm(source, engine)
    assert result.stderr == b"oops!"
    assert result.output == b""


@pytest.mark.parametrize("engine", ENGINES)
def test_setperm_grows_heap(engine):
    source = """
    _start:
        movi r0, 3            ; SETPERM
        movi r1, 0x600000     ; 6 MB
        vxcall
        cmpi r0, 0x600000
        jne  bad
        movi r1, 0x5ffffc     ; store at the very top of the new region
        movi r2, 0x1234
        st32 [r1], r2
        movi r1, 0
        jmp  out
    bad:
        movi r1, 1
    out:
        movi r0, 0
        vxcall
    """
    result = run_asm(source, engine)
    assert result.exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_done_protocol_decodes_multiple_streams(engine):
    # A decoder that upper-cases ASCII letters and uses done() between streams.
    source = """
    _start:
    stream_loop:
    read_loop:
        movi r0, 1
        movi r1, 0
        movi r2, buffer
        movi r3, 256
        vxcall
        cmpi r0, 0
        jles stream_done
        mov  r5, r0            ; n
        movi r4, 0             ; i
    transform:
        cmp  r4, r5
        jgeu flush
        movi r2, buffer
        add  r2, r4
        ld8u r1, [r2]
        cmpi r1, 'a'
        jltu keep
        cmpi r1, 'z'
        jgtu keep
        subi r1, 32
        st8  [r2], r1
    keep:
        addi r4, 1
        jmp  transform
    flush:
        movi r0, 2
        movi r1, 1
        movi r2, buffer
        mov  r3, r5
        vxcall
        jmp  read_loop
    stream_done:
        movi r0, 4             ; DONE
        vxcall
        cmpi r0, 0
        je   stream_loop       ; another stream is ready
        movi r0, 0
        movi r1, 0
        vxcall
    .data
    buffer:
        .space 256
    """
    vm = VirtualMachine(build_asm(source), engine=engine)
    results = vm.decode_many([b"hello", b"world", b"MiXeD 123"])
    assert [result.output for result in results] == [b"HELLO", b"WORLD", b"MIXED 123"]


# -- engine equivalence property -------------------------------------------------


def test_translator_and_interpreter_agree_on_echo(echo_decoder_image):
    payload = bytes((i * 7 + 3) % 256 for i in range(10_000))
    outputs = []
    for engine in ENGINES:
        vm = VirtualMachine(echo_decoder_image, engine=engine)
        outputs.append(vm.decode(payload).output)
    assert outputs[0] == outputs[1] == payload


def test_translator_reports_cache_statistics(echo_decoder_image):
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    result = vm.decode(b"a" * 64 * 1024)
    stats = result.stats
    assert stats.fragments_translated > 0
    assert stats.fragment_cache_hits > stats.fragment_cache_misses
    assert stats.instructions > 0


def test_fragment_cache_can_be_disabled(echo_decoder_image):
    vm = VirtualMachine(
        echo_decoder_image, engine=ENGINE_TRANSLATOR, use_fragment_cache=False
    )
    result = vm.decode(b"a" * 4096)
    assert result.output == b"a" * 4096
    assert result.stats.fragment_cache_hits == 0
    assert result.stats.fragments_translated == result.stats.blocks_executed


# -- superblocks, chaining and the code cache ------------------------------------


def test_translator_chains_direct_branches(echo_decoder_image):
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    result = vm.decode(b"a" * 64 * 1024)
    stats = result.stats
    # Most block transitions must ride a back-patched direct edge, so the
    # dispatcher's hash lookups are confined to indirect branches.
    assert stats.chained_branches > 0
    assert stats.chained_branches > stats.fragments_translated
    assert stats.retranslations == 0


def test_chaining_can_be_disabled(echo_decoder_image):
    vm = VirtualMachine(
        echo_decoder_image, engine=ENGINE_TRANSLATOR, chain_fragments=False
    )
    payload = b"b" * 8192
    result = vm.decode(payload)
    assert result.output == payload
    assert result.stats.chained_branches == 0
    assert result.stats.fragment_cache_hits > 0    # cache still works


def test_superblock_limit_is_honoured(echo_decoder_image):
    limited = VirtualMachine(
        echo_decoder_image, engine=ENGINE_TRANSLATOR, superblock_limit=1
    )
    unlimited = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    payload = bytes(range(256)) * 16
    assert limited.decode(payload).output == unlimited.decode(payload).output
    single = max(f.instruction_count
                 for f in limited.code_cache.fragments.values())
    assert single == 1
    assert max(f.instruction_count
               for f in unlimited.code_cache.fragments.values()) > 1


def test_private_code_cache_retranslates_after_reset(echo_decoder_image):
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    first = vm.decode(b"x" * 1024)
    assert first.stats.fragments_translated > 0
    second = vm.decode(b"x" * 1024)                # fresh=True resets the VM
    # ALWAYS_FRESH-style use pays translation again, and the engine says so.
    assert second.stats.fragments_translated > 0
    assert second.stats.retranslations == second.stats.fragments_translated


def test_shared_code_cache_survives_reset(echo_decoder_image):
    from repro.vm.code_cache import CodeCache

    cache = CodeCache(shared=True)
    vm = VirtualMachine(
        echo_decoder_image, engine=ENGINE_TRANSLATOR, code_cache=cache
    )
    first = vm.decode(b"x" * 1024)
    assert first.stats.fragments_translated > 0
    second = vm.decode(b"x" * 1024)
    assert second.output == first.output
    assert second.stats.fragments_translated == 0  # translations carried over
    assert second.stats.retranslations == 0
    assert cache.snapshot()["fragments"] > 0


def test_shared_code_cache_across_vm_instances(echo_decoder_image):
    from repro.vm.code_cache import CodeCache

    cache = CodeCache(shared=True)
    one = VirtualMachine(echo_decoder_image, code_cache=cache)
    payload = b"hello vxa"
    assert one.decode(payload).output == payload
    two = VirtualMachine(echo_decoder_image, code_cache=cache)
    result = two.decode(payload)
    assert result.output == payload
    assert result.stats.fragments_translated == 0


def test_interpreter_uses_code_cache_instruction_store(echo_decoder_image):
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_INTERPRETER)
    vm.decode(b"abc")
    assert len(vm.code_cache.instructions) > 0


def test_loop_side_exit_spills_registers_written_later_in_the_body():
    """Regression: a looping fragment's early side exit must write back
    registers that only *later* loop-body instructions modify -- those
    instructions ran on every previous iteration."""
    source = """
    _start:
    head:
        addi r1, 1
        cmpi r1, 3
        je   out          ; exit positioned before the r2 update
        addi r2, 10
        jmp  head
    out:
        cmpi r2, 20       ; two completed iterations -> r2 == 20
        je   good
        movi r1, 1
        jmp  done
    good:
        movi r1, 0
    done:
        movi r0, 0
        vxcall
    """
    for engine in ENGINES:
        result = run_asm(source, engine)
        assert result.exit_code == 0, engine


def test_push_after_load_keeps_its_own_stack_guard():
    """Regression: a read guard on the pre-decrement stack pointer must not
    subsume the write guard on the post-decrement one."""
    source = """
    _start:
        movi r7, 2        ; park sp just above address zero
        ld32 r1, [r7]     ; in bounds: emits (and caches) a guard on r7
        push r2           ; sp wraps to 0xfffffffe -> must fault precisely
        halt
    """
    with pytest.raises(MemoryFault) as caught:
        run_asm(source, ENGINE_TRANSLATOR)
    assert caught.value.kind == "write"
    assert caught.value.size == 4


def test_host_errors_in_syscall_layer_are_not_masked_as_guest_faults(
        echo_decoder_image):
    """An IndexError out of the host syscall layer must propagate, not be
    rewritten into a guest MemoryFault by the dispatcher's backstop."""
    vm = VirtualMachine(echo_decoder_image, engine=ENGINE_TRANSLATOR)
    vm.reset()
    payload = b"data"
    from repro.vm.syscalls import StreamSet
    vm.attach_streams(StreamSet.from_bytes(payload))

    original = vm.syscall_handler.dispatch

    def broken_dispatch(*args):
        raise IndexError("host bug, not a guest fault")

    vm.syscall_handler.dispatch = broken_dispatch
    with pytest.raises(IndexError):
        vm.run()
    vm.syscall_handler.dispatch = original
