"""Shared fixtures and helpers for the VXA reproduction test suite."""

from __future__ import annotations

import pytest

from repro.elf.builder import build_executable
from repro.isa.assembler import assemble


def build_asm(source: str, *, note: dict | None = None) -> bytes:
    """Assemble ``source`` and wrap it in a VXA ELF executable."""
    return build_executable(assemble(source), note=note)


@pytest.fixture(scope="session")
def echo_decoder_image() -> bytes:
    """A minimal guest "decoder" that copies stdin to stdout (the identity codec).

    Written directly in assembly so the VM layers can be tested without the
    vxc compiler.
    """
    return build_asm(
        """
        ; identity filter: while ((n = read(0, buf, 4096)) > 0) write(1, buf, n); exit(0)
        _start:
        read_loop:
            movi r0, 1            ; READ
            movi r1, 0            ; stdin
            movi r2, buffer
            movi r3, 4096
            vxcall
            cmpi r0, 0
            jles finished         ; n <= 0 -> stop
            mov  r3, r0           ; count = n
            movi r0, 2            ; WRITE
            movi r1, 1            ; stdout
            movi r2, buffer
            vxcall
            jmp  read_loop
        finished:
            movi r0, 0            ; EXIT
            movi r1, 0
            vxcall
        .data
        buffer:
            .space 4096
        """
    )
