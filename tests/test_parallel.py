"""Tests for :mod:`repro.parallel`: scheduler, worker pool, and facade plumbing.

The headline property is *determinism*: ``extract_into``/``check`` at
``jobs=1,2,4`` must produce byte-identical files and equal integrity
verdicts versus the serial path, across both execution engines.  The rest
covers the scheduler's cache-affine sharding, the ``CodeCache`` LRU cap and
its thread-safety, stats aggregation, and the partial-output-file
regression fix.
"""

from __future__ import annotations

import pathlib
import threading

import pytest

import repro.api as vxa
from repro.api.archive import MemberPlan
from repro.cli import unzip_main
from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.errors import VxaError
from repro.parallel.pool import WorkerPool, resolve_executor
from repro.parallel.scheduler import Scheduler
from repro.vm.code_cache import CodeCache
from repro.vm.machine import VirtualMachine
from repro.workloads import synthetic_log_bytes
from repro.zipformat.reader import ZipReader

JOB_COUNTS = (1, 2, 4)


# -- fixtures ------------------------------------------------------------------


def _member_contents() -> dict[str, tuple[bytes, str | None, SecurityAttributes]]:
    """Name -> (data, forced codec, attributes) for the shared test archive.

    Mixed decoders (vxz + vxbwt), alternating protection domains (so reuse
    policies have decisions to make) and raw members (the VM-free path).
    """
    members: dict[str, tuple[bytes, str | None, SecurityAttributes]] = {}
    for index in range(6):
        attributes = SecurityAttributes(owner=index % 2, group=0, mode=0o644)
        members[f"text{index}.txt"] = (
            synthetic_log_bytes(900 + 70 * index, seed=index), "vxz", attributes)
    for index in range(3):
        members[f"bwt{index}.txt"] = (
            synthetic_log_bytes(700 + 50 * index, seed=20 + index), "vxbwt",
            SecurityAttributes(owner=index, group=5, mode=0o600))
    members["raw0.bin"] = (bytes(range(256)) * 3, None, SecurityAttributes())
    members["raw1.bin"] = (b"plain bytes " * 40, None, SecurityAttributes())
    return members


@pytest.fixture(scope="module")
def archive_members() -> dict:
    return _member_contents()


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, archive_members) -> pathlib.Path:
    path = tmp_path_factory.mktemp("parallel") / "mixed.zip"
    with vxa.create(path) as builder:
        for name, (data, codec, attributes) in archive_members.items():
            if codec is None:
                builder.add(name, data, store_raw=True, attributes=attributes)
            else:
                builder.add(name, data, codec=codec, attributes=attributes)
    return path


def _options(**changes) -> vxa.ReadOptions:
    base = dict(mode=vxa.MODE_VXA, reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES,
                executor=vxa.EXECUTOR_THREAD)
    base.update(changes)
    return vxa.ReadOptions(**base)


def _plan(index, name, decoder, cost, domain=(0, 0, True)) -> MemberPlan:
    return MemberPlan(index=index, name=name, decoder_offset=decoder,
                      cost=cost, domain=domain)


# -- scheduler unit tests ------------------------------------------------------


class TestScheduler:
    def test_decoder_groups_stay_on_one_worker(self):
        # Three groups of cost 400 against a fair share of 400 (jobs=3):
        # each fits a worker, so cache affinity is total.
        items = [_plan(i, f"m{i}", decoder=i % 3, cost=100) for i in range(12)]
        shards = Scheduler(3).plan(items)
        owner: dict[int, int] = {}
        for shard in shards:
            for item in shard.items:
                assert owner.setdefault(item.decoder_offset, shard.worker) \
                    == shard.worker, "decoder image split across workers"

    def test_oversized_group_splits_across_workers(self):
        # A single-decoder archive must still fan out: the group is split
        # into fair-share chunks, one decoder translation per worker.
        items = [_plan(i, f"m{i}", decoder=7, cost=100) for i in range(8)]
        shards = Scheduler(4).plan(items)
        assert len(shards) == 4
        assert sorted(shard.cost for shard in shards) == [200, 200, 200, 200]
        assert sorted(item.name for shard in shards for item in shard.items) \
            == sorted(item.name for item in items)

    def test_lpt_balances_costs(self):
        items = [_plan(i, f"m{i}", decoder=i, cost=cost)
                 for i, cost in enumerate([800, 700, 300, 300, 200, 100])]
        shards = Scheduler(2).plan(items)
        costs = sorted(shard.cost for shard in shards)
        assert costs == [1200, 1200]

    def test_vm_free_members_fill_gaps(self):
        items = [_plan(0, "big", decoder=7, cost=1000)] + [
            _plan(i, f"raw{i}", decoder=None, cost=200) for i in range(1, 5)]
        shards = Scheduler(2).plan(items)
        light = min(shards, key=lambda shard: shard.cost)
        assert all(item.decoder_offset is None for item in light.items)
        assert light.cost == 800  # raw members pool opposite the big decoder

    def test_domain_ordering_within_worker(self):
        items = [
            _plan(0, "a", decoder=1, cost=10, domain=(0, 0, True)),
            _plan(1, "b", decoder=1, cost=10, domain=(1, 0, True)),
            _plan(2, "c", decoder=1, cost=10, domain=(0, 0, True)),
            _plan(3, "d", decoder=1, cost=10, domain=(1, 0, True)),
        ]
        [shard] = Scheduler(1).plan(items)
        assert shard.names == ["a", "b", "c", "d"]  # jobs=1 keeps archive order
        shards = Scheduler(2).plan(items)
        # The oversized group splits along domain boundaries: each chunk is
        # a single protection domain, so no worker pays an attribute flip.
        assert sorted(shard.names for shard in shards) == [["a", "c"], ["b", "d"]]

    def test_plan_is_deterministic_and_trims_empty_shards(self):
        items = [_plan(i, f"m{i}", decoder=i % 2, cost=50) for i in range(3)]
        first = Scheduler(8).plan(items)
        second = Scheduler(8).plan(items)
        assert [shard.names for shard in first] == [shard.names for shard in second]
        assert len(first) <= len(items)  # never more shards than members

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            Scheduler(0)


# -- executor resolution -------------------------------------------------------


def test_resolve_executor_auto(monkeypatch):
    assert resolve_executor("thread", 8) == "thread"
    assert resolve_executor("process", 8) == "process"
    assert resolve_executor("auto", 1) == "thread"
    monkeypatch.setattr("repro.parallel.pool.os.cpu_count", lambda: 1)
    assert resolve_executor("auto", 4, total_cost=1 << 30) == "thread"
    monkeypatch.setattr("repro.parallel.pool.os.cpu_count", lambda: 8)
    assert resolve_executor("auto", 4, total_cost=1 << 30) == "process"
    assert resolve_executor("auto", 4, total_cost=1024) == "thread"
    assert resolve_executor("auto", 4, total_cost=1 << 30,
                            payload=lambda: None) == "thread"  # unpicklable


def test_worker_pool_propagates_first_error_by_payload_order():
    def boom(payload):
        if payload % 2:
            raise ValueError(f"payload {payload}")
        return payload

    with WorkerPool(2, vxa.EXECUTOR_THREAD) as pool:
        with pytest.raises(ValueError, match="payload 1"):
            pool.run(boom, [0, 1, 2, 3])
        assert pool.run(boom, [0, 2, 4]) == [0, 2, 4]


# -- determinism: parallel == serial ------------------------------------------


#: The interpreter is an order of magnitude slower, so its determinism runs
#: cover a representative member subset (both decoders, both domains, raw).
INTERPRETER_SUBSET = ["text0.txt", "text1.txt", "bwt0.txt", "raw0.bin"]


@pytest.mark.parametrize("jobs,engine", [
    (1, "translator"), (2, "translator"), (4, "translator"),
    (1, "interpreter"), (2, "interpreter"), (4, "interpreter"),
])
def test_extract_into_matches_serial_bytes(tmp_path, archive_path,
                                           archive_members, jobs, engine):
    options = _options(jobs=jobs, engine=engine)
    wanted = (list(archive_members) if engine == "translator"
              else INTERPRETER_SUBSET)
    out = tmp_path / f"out-{engine}-{jobs}"
    with vxa.open(archive_path, options) as archive:
        records = archive.extract_into(out, wanted)
        stats = archive.session.stats
    assert [record.name for record in records] == wanted
    for name in wanted:
        data = archive_members[name][0]
        assert (out / name).read_bytes() == data, f"{name} diverged at jobs={jobs}"
    decoded = sum(1 for name in wanted if archive_members[name][1])
    assert stats.decodes == decoded  # every VXA member decoded exactly once


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_check_matches_serial_verdicts(archive_path, jobs):
    with vxa.open(archive_path, _options()) as archive:
        serial = archive.check()
    with vxa.open(archive_path, _options(jobs=jobs)) as archive:
        parallel = archive.check()
    assert (parallel.checked, parallel.passed) == (serial.checked, serial.passed)
    assert parallel.failures == serial.failures == []
    assert parallel.fragments_translated > 0


@pytest.mark.parametrize("jobs", (1, 2))
def test_check_unknown_name_raises_in_both_paths(archive_path, jobs):
    with vxa.open(archive_path, _options(jobs=jobs)) as archive:
        with pytest.raises(VxaError):
            archive.check(names=["text0.txt", "missing.txt"])


def test_process_executor_matches_serial(tmp_path, archive_path, archive_members):
    options = _options(jobs=2, executor=vxa.EXECUTOR_PROCESS)
    out = tmp_path / "proc"
    with vxa.open(archive_path, options) as archive:
        archive.extract_into(out)
        assert archive.session.stats.decodes == sum(
            1 for _, codec, _ in archive_members.values() if codec)
    for name, (data, _, _) in archive_members.items():
        assert (out / name).read_bytes() == data


def _corrupt_member(archive_path, tmp_path, name) -> pathlib.Path:
    """Copy the archive and flip one byte inside ``name``'s stored payload."""
    corrupt = tmp_path / "corrupt.zip"
    data = bytearray(archive_path.read_bytes())
    with open(archive_path, "rb") as file:
        reader = ZipReader(file)
        entry = reader.find(name)
        offset, size = reader._stored_extent(entry)
    data[offset + size // 2] ^= 0xFF
    corrupt.write_bytes(bytes(data))
    return corrupt


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_check_failure_verdicts_match_serial(tmp_path, archive_path, jobs):
    corrupt = _corrupt_member(archive_path, tmp_path, "text3.txt")
    with vxa.open(corrupt, _options()) as archive:
        serial = archive.check()
    with vxa.open(corrupt, _options(jobs=jobs)) as archive:
        parallel = archive.check()
    assert not serial.ok
    assert (parallel.checked, parallel.passed) == (serial.checked, serial.passed)
    assert parallel.failures == serial.failures
    assert any(failure.startswith("text3.txt:") for failure in parallel.failures)


# -- partial-output regression (satellite fix) ---------------------------------


@pytest.mark.parametrize("jobs", (1, 2))
def test_failed_extraction_leaves_no_partial_files(tmp_path, archive_path, jobs):
    corrupt = _corrupt_member(archive_path, tmp_path, "bwt1.txt")
    out = tmp_path / f"partial-{jobs}"
    with vxa.open(corrupt, _options(jobs=jobs)) as archive:
        with pytest.raises(VxaError):
            archive.extract_into(out)
    assert not (out / "bwt1.txt").exists(), "failed member left behind"
    leftovers = list(out.rglob("*.vxa-partial"))
    assert leftovers == [], f"temporary files not cleaned up: {leftovers}"
    # Members that completed before the failure are whole, not truncated.
    for path in out.iterdir():
        name = path.name
        original = _member_contents()[name][0]
        assert path.read_bytes() == original


# -- CodeCache: LRU cap, eviction counters, thread safety ----------------------


class TestCodeCacheLimit:
    def test_store_evicts_least_recently_used(self):
        cache = CodeCache(limit=2)
        cache.store(0x10, "a")
        cache.store(0x20, "b")
        cache.touch(0x10)          # refresh: 0x20 becomes the LRU victim
        cache.store(0x30, "c")
        assert set(cache.fragments) == {0x10, 0x30}
        assert cache.evictions == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            CodeCache(limit=0)

    def test_unlimited_cache_never_evicts(self):
        cache = CodeCache()
        for index in range(100):
            cache.store(index, index)
        assert len(cache) == 100 and cache.evictions == 0

    def test_evictions_surface_in_session_stats(self, archive_path):
        subset = ["text0.txt", "text2.txt", "text4.txt"]
        options = _options(code_cache_limit=16)
        with vxa.open(archive_path, options) as archive:
            report = archive.check(names=subset)
            assert report.evictions > 0
            assert report.retranslations > 0  # evicted entries re-translate
        unlimited = _options()
        with vxa.open(archive_path, unlimited) as archive:
            assert archive.check(names=subset).evictions == 0

    def test_options_validate_limit(self):
        with pytest.raises(ValueError):
            vxa.ReadOptions(code_cache_limit=0)
        with pytest.raises(ValueError):
            vxa.ReadOptions(jobs=0)
        with pytest.raises(ValueError):
            vxa.ReadOptions(executor="carrier-pigeon")


def test_code_cache_concurrent_mutation_is_safe():
    cache = CodeCache(limit=64)
    errors: list[BaseException] = []

    def hammer(seed: int) -> None:
        try:
            for index in range(400):
                key = (seed * 400 + index) % 96
                cache.store(key, index)
                cache.touch((key * 7) % 96)
                if index % 50 == 0:
                    cache.record_run(hits=1, misses=1)
                    cache.snapshot()
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(cache.fragments) <= 64
    assert cache.hits == cache.misses  # no lost counter updates


def test_concurrent_translation_shares_memo_safely(echo_decoder_image):
    """Concurrent VMs over one image: the compiled-source memo stays sane."""
    payload = bytes(range(256)) * 8
    outputs: list[bytes] = []
    errors: list[BaseException] = []

    def decode() -> None:
        try:
            vm = VirtualMachine(echo_decoder_image)
            result = vm.decode(payload)
            outputs.append(result.output)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=decode) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert outputs == [payload] * 6


# -- facade/CLI integration ----------------------------------------------------


def test_worker_source_detects_replaced_file(tmp_path, archive_path):
    """After an atomic-rename replacement, workers must not reopen the path."""
    copy = tmp_path / "copy.zip"
    copy.write_bytes(archive_path.read_bytes())
    with vxa.open(copy, _options()) as archive:
        assert archive.worker_source() == {"path": str(copy)}
        replacement = tmp_path / "other.zip"
        replacement.write_bytes(b"PK\x05\x06" + bytes(18))  # empty zip
        replacement.replace(copy)
        source = archive.worker_source()
        assert "data" in source, "stale path handed to workers"
        assert source["data"] == archive_path.read_bytes()  # the open handle


def test_single_decoder_archive_parallelises(tmp_path, archive_path,
                                             archive_members):
    """All-one-decoder shards split across workers, not serial fallback."""
    vxz_members = [name for name, (_, codec, _) in archive_members.items()
                   if codec == "vxz"]
    out = tmp_path / "single-decoder"
    with vxa.open(archive_path, _options(jobs=3)) as archive:
        records = archive.extract_into(out, vxz_members)
        stats = archive.session.stats
    assert [record.name for record in records] == vxz_members
    for name in vxz_members:
        assert (out / name).read_bytes() == archive_members[name][0]
    # More than one worker initialised a VM for the shared decoder image.
    assert stats.vm_initialisations > 1


def test_read_options_jobs_defaults_flow_through(tmp_path, archive_path,
                                                 archive_members):
    """ReadOptions.jobs alone (no per-call argument) engages the engine."""
    out = tmp_path / "via-options"
    with vxa.open(archive_path, _options(jobs=3)) as archive:
        records = archive.extract_into(out)
    assert len(records) == len(archive_members)
    assert (out / "raw0.bin").read_bytes() == archive_members["raw0.bin"][0]


def test_cli_extract_jobs_and_stats(tmp_path, archive_path, archive_members,
                                    capsys):
    out = tmp_path / "cli"
    status = unzip_main([
        "extract", str(archive_path), "-o", str(out), "--vxa",
        "--jobs", "2", "--stats", "--reuse", "reuse-same-attributes",
    ])
    assert status == 0
    printed = capsys.readouterr().out
    assert "eviction(s)" in printed
    assert "fragment(s) translated" in printed
    for name, (data, _, _) in archive_members.items():
        assert (out / name).read_bytes() == data


def test_cli_check_jobs(archive_path, capsys):
    status = unzip_main(["check", str(archive_path), "--jobs", "2",
                         "--reuse", "reuse-same-attributes"])
    assert status == 0
    assert "members passed" in capsys.readouterr().out
