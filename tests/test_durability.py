"""Durability chaos suite: crash-consistent writes, salvage reads, repair.

The acceptance matrix for the durable-archive work: for every media fault
in {truncate-tail, flip-bytes in a payload, flip-bytes in the central
directory, torn-finalize}, ``vxunzip repair`` must recover every undamaged
member byte-identically (CRC-verified by the repaired archive's own
commit record and re-extraction), and ``check --deep`` exit codes must
distinguish clean (0) / salvageable (1) / unrecoverable (2) -- pinned at
``jobs=1`` and ``jobs=2``.  Plus the substrate tests: commit-record
round-trips, torn-finalize leaving no destination, durable extraction
fsyncing outputs, and salvage extraction containing damage per-member.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import zipfile

import pytest

import repro.api as vxa
from repro.api.options import EXECUTOR_THREAD
from repro.errors import ArchiveDamagedError, CodecError, VxaError, ZipFormatError
from repro.faults.media import TornFinalize, flip_bytes, truncate_tail
from repro.repair import (
    ACTION_COPIED,
    deep_check,
    minimal_diagnosis,
    repair_archive,
)
from repro.workloads import synthetic_log_bytes
from repro.zipformat.reader import ZipReader


def _members() -> dict[str, bytes]:
    data = {f"member{index}.txt": synthetic_log_bytes(900 + 70 * index,
                                                      seed=index)
            for index in range(4)}
    data["plain.bin"] = bytes(range(256)) * 8
    return data


@pytest.fixture(scope="module")
def members() -> dict[str, bytes]:
    return _members()


def _build(path: pathlib.Path, members: dict[str, bytes],
           options: vxa.WriteOptions | None = None) -> None:
    with vxa.create(path, options) as builder:
        for name, data in members.items():
            if name.endswith(".bin"):
                builder.add(name, data, store_raw=True)
            else:
                builder.add(name, data, codec="vxz")


@pytest.fixture(scope="module")
def clean_archive(tmp_path_factory, members) -> pathlib.Path:
    path = tmp_path_factory.mktemp("durability") / "clean.vxa"
    _build(path, members)
    return path


def _read_options(jobs: int = 1, **changes) -> vxa.ReadOptions:
    changes.setdefault("mode", vxa.MODE_VXA)
    changes.setdefault("jobs", jobs)
    changes.setdefault("executor", EXECUTOR_THREAD)
    return vxa.ReadOptions(**changes)


def _extract_all(source, out: pathlib.Path, *, jobs: int = 1,
                 **option_changes):
    with vxa.open(source, _read_options(jobs, **option_changes)) as archive:
        report = archive.extract_into(out)
        stats = dataclasses.replace(archive.session.stats)
    return report, stats


# -- commit record round-trip ------------------------------------------------------


def test_commit_record_verifies_on_clean_archive(clean_archive):
    reader = ZipReader(clean_archive.read_bytes())
    assert reader.commit_marker is not None
    assert reader.commit_verified
    assert reader.digest_table is not None
    assert not reader.directory_reconstructed
    # Every named member and every decoder extent has a digest row.
    named = {entry.name for entry in reader.entries}
    assert {row.name for row in reader.digest_table.extents
            if row.name} == named


def test_commit_record_is_invisible_to_plain_zip_readers(tmp_path, members):
    path = tmp_path / "compat.vxa"
    with vxa.create(path) as builder:
        for name, data in members.items():
            builder.add(name, data, store_raw=True)
    with zipfile.ZipFile(path) as plain:
        assert sorted(plain.namelist()) == sorted(members)
        for name, data in members.items():
            assert plain.read(name) == data


def test_user_comment_survives_commit_marker(tmp_path, members):
    path = tmp_path / "comment.vxa"
    with vxa.create(path) as builder:
        builder.add("one.bin", members["plain.bin"], store_raw=True)
        builder.finish(b"user comment")
    reader = ZipReader(path.read_bytes())
    assert reader.comment == b"user comment"
    assert reader.commit_verified


def test_commit_record_can_be_disabled(tmp_path, members):
    path = tmp_path / "plain.vxa"
    _build(path, members, vxa.WriteOptions(commit_record=False))
    reader = ZipReader(path.read_bytes())
    assert reader.commit_marker is None
    assert not reader.commit_verified
    assessment = deep_check(path)
    assert assessment.commit_status == "absent"
    assert assessment.classification() == "clean"


# -- crash-consistent finalize -----------------------------------------------------


def test_durable_create_leaves_no_temp(tmp_path, members):
    path = tmp_path / "durable.vxa"
    _build(path, members)
    assert path.exists()
    assert not list(tmp_path.glob("*.vxa-tmp.*"))


def test_nondurable_create_writes_in_place(tmp_path, members):
    path = tmp_path / "direct.vxa"
    _build(path, members, vxa.WriteOptions(durable=False))
    assert path.exists()
    assert deep_check(path).classification() == "clean"


@pytest.mark.parametrize("fault", ["pre-fsync", "pre-rename", "mid-directory"])
def test_torn_finalize_never_exposes_destination(tmp_path, members, fault):
    path = tmp_path / f"torn-{fault}.vxa"
    with pytest.raises(TornFinalize):
        _build(path, members, vxa.WriteOptions(finalize_fault=fault))
    # The destination is never renamed into place on a torn finalize.
    assert not path.exists()


def test_torn_directory_temp_is_salvageable(tmp_path, members):
    path = tmp_path / "torn.vxa"
    with pytest.raises(TornFinalize):
        _build(path, members, vxa.WriteOptions(finalize_fault="mid-directory"))
    [temp] = list(tmp_path.glob("torn.vxa.vxa-tmp.*"))
    assessment = deep_check(temp)
    assert assessment.classification() == "salvageable"
    assert assessment.directory_status == "reconstructed"
    repaired = tmp_path / "repaired.vxa"
    result = repair_archive(temp, repaired)
    assert result.rebuilt
    assert sorted(result.copied) == sorted(members)
    assert deep_check(repaired).classification() == "clean"


# -- the chaos matrix --------------------------------------------------------------


def _damage(clean: pathlib.Path, out: pathlib.Path, fault: str) -> set[str]:
    """Apply one matrix fault; returns the member names expected to be lost."""
    data = clean.read_bytes()
    reader = ZipReader(data)
    if fault == "truncate-tail":
        keep = reader.directory_offset + reader.directory_size // 2
        out.write_bytes(truncate_tail(data, len(data) - keep))
        return set()
    if fault == "flip-payload":
        target = next(entry for entry in reader.entries
                      if entry.name == "member1.txt")
        start, size = reader.member_extent(target)
        offset = start + size - min(32, target.compressed_size)
        out.write_bytes(flip_bytes(data, offset, 8, seed=11))
        return {"member1.txt"}
    if fault == "flip-directory":
        out.write_bytes(flip_bytes(data, reader.directory_offset + 12, 6,
                                   seed=12))
        return set()
    raise AssertionError(fault)


MATRIX = ["truncate-tail", "flip-payload", "flip-directory", "torn-finalize"]


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("fault", MATRIX)
def test_repair_recovers_undamaged_members_byte_identically(
        tmp_path, members, clean_archive, fault, jobs):
    damaged = tmp_path / "damaged.vxa"
    if fault == "torn-finalize":
        target = tmp_path / "never.vxa"
        with pytest.raises(TornFinalize):
            _build(target, members,
                   vxa.WriteOptions(finalize_fault="mid-directory"))
        [temp] = list(tmp_path.glob("never.vxa.vxa-tmp.*"))
        damaged.write_bytes(temp.read_bytes())
        lost = set()
    else:
        lost = _damage(clean_archive, damaged, fault)

    assessment = deep_check(damaged)
    assert assessment.exit_code() == 1, fault      # damaged but salvageable
    assert {m.name for m in assessment.damaged_members} == lost

    repaired = tmp_path / "repaired.vxa"
    result = repair_archive(damaged, repaired)
    assert result.rebuilt
    assert set(result.dropped) == lost
    assert set(result.copied) == set(members) - lost
    # The repaired archive carries a fresh, verified commit record and its
    # own media assessment is clean (every copied extent CRC/digest-checked).
    verify = deep_check(repaired)
    assert verify.exit_code() == 0
    assert verify.commit_status == "verified"
    # Survivors re-extract byte-identically at the pinned worker count.
    out = tmp_path / "out"
    report, _ = _extract_all(repaired, out, jobs=jobs)
    assert not report.failures
    for name in set(members) - lost:
        assert (out / name).read_bytes() == members[name], name


def test_deep_check_exit_codes_span_the_scale(tmp_path, members,
                                              clean_archive):
    assert deep_check(clean_archive).exit_code() == 0
    data = clean_archive.read_bytes()
    reader = ZipReader(data)
    salvageable = tmp_path / "salvageable.vxa"
    _damage(clean_archive, salvageable, "flip-payload")
    assert deep_check(salvageable).exit_code() == 1
    # Damage every member extent: nothing intact, nothing salvageable.
    hopeless = data
    for entry in reader.entries:
        start, size = reader.member_extent(entry)
        hopeless = flip_bytes(hopeless, start + size - 4, 4, seed=13)
    wrecked = tmp_path / "wrecked.vxa"
    wrecked.write_bytes(hopeless)
    assert deep_check(wrecked).exit_code() == 2
    with pytest.raises(ArchiveDamagedError):
        repair_archive(wrecked, tmp_path / "no.vxa")


def test_minimal_diagnosis_attributes_loss_to_decoder_extent(tmp_path,
                                                             clean_archive):
    data = clean_archive.read_bytes()
    decoder_offset = min(deep_check(clean_archive).decoders)
    damaged = tmp_path / "decoderless.vxa"
    damaged.write_bytes(flip_bytes(data, decoder_offset + 40, 4, seed=14))
    assessment = deep_check(damaged)
    regions = minimal_diagnosis(assessment)
    # One region (the decoder extent) explains every dependent member; the
    # members damaged only via the decoder get no regions of their own.
    [region] = [r for r in regions if r.members]
    assert "decoder extent damaged" in region.description
    assert set(region.members) == {m.name for m in assessment.members
                                   if m.status != "intact"}
    # The precompressed/raw member survives decoder loss on repair.
    result = repair_archive(damaged, tmp_path / "out.vxa")
    assert "plain.bin" in result.copied


def test_repair_is_idempotent_on_clean_archives(tmp_path, members,
                                                clean_archive):
    out1 = tmp_path / "r1.vxa"
    result = repair_archive(clean_archive, out1)
    assert result.classification == "clean"
    assert [a.action for a in result.actions] == [ACTION_COPIED] * len(members)
    out2 = tmp_path / "r2.vxa"
    repair_archive(out1, out2)
    # A second repair of already-repaired output is byte-stable.
    assert out1.read_bytes() == out2.read_bytes()


def test_repair_dry_run_writes_nothing(tmp_path, clean_archive):
    before = clean_archive.read_bytes()
    result = repair_archive(clean_archive)
    assert not result.rebuilt and result.output_path is None
    assert clean_archive.read_bytes() == before
    assert not list(tmp_path.glob("*.vxa-tmp.*"))


# -- salvage extraction ------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_salvage_extraction_contains_damage_per_member(tmp_path, members,
                                                       clean_archive, jobs):
    damaged = tmp_path / "damaged.vxa"
    lost = _damage(clean_archive, damaged, "flip-payload")
    out = tmp_path / "out"
    report, stats = _extract_all(damaged, out, jobs=jobs,
                                 on_damage=vxa.ON_DAMAGE_SALVAGE)
    assert {f.name for f in report.failures} == lost
    for failure in report.failures:
        assert failure.error_type in ("CodecError", "IntegrityError")
    for name in set(members) - lost:
        assert (out / name).read_bytes() == members[name], name
    assert stats.members_salvaged >= 1
    assert stats.commit_record_verified >= 1


def test_reject_mode_still_aborts_on_damage(tmp_path, members, clean_archive):
    damaged = tmp_path / "damaged.vxa"
    _damage(clean_archive, damaged, "flip-payload")
    with pytest.raises((CodecError, VxaError)):
        _extract_all(damaged, tmp_path / "out")


def test_salvage_reconstructs_lost_directory(tmp_path, members, clean_archive):
    damaged = tmp_path / "truncated.vxa"
    _damage(clean_archive, damaged, "truncate-tail")
    with pytest.raises(ZipFormatError):
        vxa.open(damaged.read_bytes(), _read_options())
    out = tmp_path / "out"
    report, stats = _extract_all(damaged, out,
                                 on_damage=vxa.ON_DAMAGE_SALVAGE)
    assert not report.failures
    for name, data in members.items():
        assert (out / name).read_bytes() == data, name
    assert stats.directory_reconstructed == 1
    assert stats.members_salvaged >= 1


# -- durable extraction outputs ----------------------------------------------------


def _count_fsyncs(monkeypatch) -> list[int]:
    calls: list[int] = []
    real = os.fsync

    def counting(fd):
        calls.append(fd)
        return real(fd)

    monkeypatch.setattr(os, "fsync", counting)
    return calls


def test_extract_fsyncs_outputs_by_default(tmp_path, members, clean_archive,
                                           monkeypatch):
    calls = _count_fsyncs(monkeypatch)
    _extract_all(clean_archive, tmp_path / "out")
    # At least one fsync per extracted member, plus the directory flushes.
    assert len(calls) >= len(members)


def test_durable_output_off_skips_fsync(tmp_path, members, clean_archive,
                                        monkeypatch):
    calls = _count_fsyncs(monkeypatch)
    report, _ = _extract_all(clean_archive, tmp_path / "out",
                             durable_output=False)
    assert not report.failures
    assert calls == []


# -- torn archives never parse as committed ----------------------------------------


def test_truncation_always_detected_with_commit_record(clean_archive):
    """Any tail truncation of a committed archive is detected, never silent."""
    data = clean_archive.read_bytes()
    for drop in (1, 2, 7, 64, 300):
        torn = truncate_tail(data, drop)
        try:
            reader = ZipReader(torn)
        except ZipFormatError:
            continue                      # detected: strict open refused
        assert not reader.commit_verified
