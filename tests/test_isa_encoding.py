"""Unit tests for VXA-32 instruction encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidInstructionError
from repro.isa.encoding import decode, decode_all, encode, instruction_length
from repro.isa.opcodes import Fmt, Op, OPCODES, NUM_REGISTERS


def test_encode_none_format_is_one_byte():
    assert encode(Op.NOP) == bytes([Op.NOP])
    assert encode(Op.RET) == bytes([Op.RET])


def test_encode_reg_format():
    data = encode(Op.PUSH, rd=3)
    assert data == bytes([Op.PUSH, 3])


def test_encode_reg_reg_packs_nibbles():
    data = encode(Op.ADD, rd=2, rs=5)
    assert data == bytes([Op.ADD, (2 << 4) | 5])


def test_encode_reg_imm_little_endian():
    data = encode(Op.MOVI, rd=1, imm=0x11223344)
    assert data == bytes([Op.MOVI, 1, 0x44, 0x33, 0x22, 0x11])


def test_encode_negative_immediate_wraps():
    data = encode(Op.ADDI, rd=0, imm=-1)
    assert data[-4:] == b"\xff\xff\xff\xff"


def test_encode_rejects_bad_register():
    with pytest.raises(InvalidInstructionError):
        encode(Op.MOV, rd=8, rs=0)
    with pytest.raises(InvalidInstructionError):
        encode(Op.MOV, rd=0, rs=9)


def test_decode_rejects_illegal_opcode():
    with pytest.raises(InvalidInstructionError):
        decode(b"\xff")


def test_decode_rejects_truncated_instruction():
    data = encode(Op.MOVI, rd=1, imm=5)[:-1]
    with pytest.raises(InvalidInstructionError):
        decode(data)


def test_decode_rejects_register_out_of_range():
    with pytest.raises(InvalidInstructionError):
        decode(bytes([Op.PUSH, 12]))


def test_decode_empty_buffer():
    with pytest.raises(InvalidInstructionError):
        decode(b"", 0)


def test_relative_branch_decodes_signed():
    data = encode(Op.JMP, imm=-10)
    insn = decode(data)
    assert insn.imm == -10


def test_instruction_length_matches_encoding():
    for op, info in OPCODES.items():
        encoded = encode(op, rd=0, rs=0, imm=0)
        assert len(encoded) == instruction_length(op), info.mnemonic


def test_decode_all_walks_a_sequence():
    code = encode(Op.MOVI, rd=0, imm=7) + encode(Op.ADD, rd=0, rs=1) + encode(Op.RET)
    items = list(decode_all(code))
    assert [insn.op for _, insn in items] == [Op.MOVI, Op.ADD, Op.RET]
    assert [offset for offset, _ in items] == [0, 6, 8]


@given(
    op=st.sampled_from(sorted(OPCODES)),
    rd=st.integers(min_value=0, max_value=NUM_REGISTERS - 1),
    rs=st.integers(min_value=0, max_value=NUM_REGISTERS - 1),
    imm=st.integers(min_value=-(2**31), max_value=2**32 - 1),
)
def test_encode_decode_round_trip(op, rd, rs, imm):
    """Property: decoding an encoded instruction recovers its operands."""
    encoded = encode(op, rd=rd, rs=rs, imm=imm)
    insn = decode(encoded)
    info = OPCODES[op]
    assert insn.op == op
    assert insn.length == len(encoded)
    if info.fmt in (Fmt.REG, Fmt.REG_IMM):
        assert insn.rd == rd
    if info.fmt in (Fmt.REG_REG, Fmt.REG_REG_IMM):
        assert insn.rd == rd
        assert insn.rs == rs
    if info.fmt in (Fmt.REG_IMM, Fmt.REG_REG_IMM):
        assert insn.imm == imm & 0xFFFFFFFF
    if info.fmt is Fmt.REL:
        expected = imm & 0xFFFFFFFF
        expected = expected - 2**32 if expected >= 2**31 else expected
        assert insn.imm == expected


@given(payload=st.binary(min_size=1, max_size=64))
def test_decoder_never_crashes_on_arbitrary_bytes(payload):
    """Property: arbitrary bytes either decode or raise InvalidInstructionError.

    This matters for the sandbox: a malicious decoder can jump anywhere in its
    code segment, so the translator must handle any byte sequence gracefully.
    """
    try:
        insn = decode(payload)
    except InvalidInstructionError:
        return
    assert 1 <= insn.length <= 7
