"""Chaos suite: deterministic fault injection against the containment layer.

Every test here provokes a failure *on purpose* through
:class:`repro.faults.FaultPlan` and asserts the salvage invariants the
robustness work promises: exactly the injected members fail, every
survivor's bytes are identical to a clean run, worker crashes are recovered
by rescheduling with per-member retry budgets, and wedged guests die at
their wall-clock deadline on both engines and both executors.
"""

from __future__ import annotations

import io
import pathlib
import pickle
import time

import pytest

import repro.api as vxa
import repro.errors
import repro.faults  # noqa: F401  -- registers FaultPlanError for the walk
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    InvalidInstructionError,
    MemoryFault,
    ResourceLimitExceeded,
    VxaError,
    VxcSyntaxError,
    WorkerCrashed,
)
from repro.faults import (
    DEFAULT_FUEL,
    FaultPlan,
    FaultSpec,
    KIND_CORRUPT_PAYLOAD,
    KIND_DELAY_IO,
    KIND_EXHAUST_FUEL,
    KIND_KILL_WORKER,
    KIND_SYSCALL_ERROR,
)

MEMBERS = 6


def _archive_bytes(members: int = MEMBERS) -> bytes:
    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        for index in range(members):
            builder.add(f"file{index}.txt",
                        (f"payload {index} " * 120).encode())
    return buffer.getvalue()


@pytest.fixture(scope="module")
def archive_bytes() -> bytes:
    return _archive_bytes()


@pytest.fixture(scope="module")
def clean_outputs(archive_bytes, tmp_path_factory) -> dict[str, bytes]:
    out = tmp_path_factory.mktemp("clean")
    with vxa.open(io.BytesIO(archive_bytes),
                  vxa.ReadOptions(mode=vxa.MODE_VXA)) as archive:
        archive.extract_into(out)
    return {path.name: path.read_bytes() for path in out.iterdir()}


def _assert_survivors_identical(report, out_dir, clean_outputs):
    extracted = {record.name for record in report}
    for name in extracted:
        assert (out_dir / name).read_bytes() == clean_outputs[name]
    # No partial files may survive a contained failure.
    assert not list(out_dir.glob("*.vxa-partial"))


# -- FaultPlan unit behaviour ------------------------------------------------------


def test_plan_serialisation_round_trip():
    plan = FaultPlan(specs=(
        FaultSpec(member="a", kind=KIND_KILL_WORKER, times=2),
        FaultSpec(member="b", kind=KIND_SYSCALL_ERROR, at=3),
        FaultSpec(member="c", kind=KIND_DELAY_IO, delay=0.5),
    ), seed=7, ledger="/tmp/ledger")
    assert FaultPlan.from_dict(plan.as_dict()) == plan


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultSpec(member="a", kind="set-on-fire")


def test_corrupt_is_deterministic_and_changes_payload():
    plan = FaultPlan(specs=(FaultSpec(member="m", kind=KIND_CORRUPT_PAYLOAD),),
                     seed=42)
    payload = bytes(range(256)) * 4
    first = plan.corrupt("m", payload)
    assert first != payload
    assert first == plan.corrupt("m", payload)
    assert plan.corrupt("other", payload) == payload
    # A different seed flips a different position or value.
    other = FaultPlan(specs=(FaultSpec(member="m", kind=KIND_CORRUPT_PAYLOAD),),
                      seed=43)
    assert other.corrupt("m", payload) != first


def test_fuel_and_syscall_defaults():
    plan = FaultPlan(specs=(
        FaultSpec(member="f", kind=KIND_EXHAUST_FUEL),
        FaultSpec(member="s", kind=KIND_SYSCALL_ERROR),
    ))
    assert plan.fuel_limit("f") == DEFAULT_FUEL
    assert plan.syscall_fault_at("s") == 1
    assert plan.fuel_limit("s") is None
    assert plan.syscall_fault_at("f") is None


def test_bounded_claims_with_ledger_survive_plan_copies(tmp_path):
    spec = FaultSpec(member="m", kind=KIND_KILL_WORKER, times=2)
    plan = FaultPlan(specs=(spec,), ledger=str(tmp_path / "ledger"))
    # A pickled copy (as a process worker would hold) shares the ledger.
    twin = pickle.loads(pickle.dumps(plan))
    assert plan._claim(spec) is True
    assert twin._claim(spec) is True
    assert plan._claim(spec) is False
    assert twin._claim(spec) is False


def test_unbounded_specs_always_fire():
    plan = FaultPlan(specs=(FaultSpec(member="m", kind=KIND_EXHAUST_FUEL),))
    for _ in range(5):
        assert plan.fuel_limit("m") == DEFAULT_FUEL


# -- every exception survives the worker pickle boundary ---------------------------

_SAMPLES = {
    MemoryFault: lambda cls: cls(0xdeadbeef, 4, "write"),
    InvalidInstructionError: lambda cls: cls(
        "bad opcode", offset=0x40, reason="opcode"),
    VxcSyntaxError: lambda cls: cls("unexpected token", line=3, column=9),
    DeadlineExceeded: lambda cls: cls(
        "too slow", deadline=1.5, instructions=123456),
    WorkerCrashed: lambda cls: cls("boom", member="m.txt", worker=2),
}


def _all_error_classes():
    seen = []
    stack = [VxaError]
    while stack:
        cls = stack.pop()
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return sorted(set(seen), key=lambda cls: cls.__name__)


@pytest.mark.parametrize("cls", _all_error_classes(),
                         ids=lambda cls: cls.__name__)
def test_every_error_pickles_round_trip(cls):
    build = _SAMPLES.get(cls, lambda c: c("synthetic failure"))
    original = build(cls)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert str(clone) == str(original)
    assert clone.args == original.args
    assert clone.__dict__ == original.__dict__


def test_error_walk_is_exhaustive():
    names = {cls.__name__ for cls in _all_error_classes()}
    # Spot-check that the walk spans every module contributing errors.
    assert {"VxaError", "MemoryFault", "DeadlineExceeded", "WorkerCrashed",
            "FaultPlanError", "IntegrityError"} <= names


# -- serial salvage ----------------------------------------------------------------

_INJECTED = {
    "file1.txt": KIND_CORRUPT_PAYLOAD,
    "file3.txt": KIND_EXHAUST_FUEL,
    "file4.txt": KIND_SYSCALL_ERROR,
}

_EXPECTED_ERRORS = {
    "file1.txt": "IntegrityError",
    "file3.txt": "ResourceLimitExceeded",
    "file4.txt": "InjectedFault",
}


def _fault_plan(**kwargs) -> FaultPlan:
    return FaultPlan(specs=tuple(
        FaultSpec(member=member, kind=kind)
        for member, kind in _INJECTED.items()), **kwargs)


@pytest.mark.parametrize("engine", ["translator", "interpreter"])
def test_serial_salvage_quarantines_exactly_injected_members(
        archive_bytes, clean_outputs, tmp_path, engine):
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, engine=engine,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              fault_plan=_fault_plan())
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path)
    assert {failure.name for failure in report.failures} == set(_INJECTED)
    assert sorted(report.quarantined) == sorted(_INJECTED)
    for failure in report.failures:
        assert failure.error_type == _EXPECTED_ERRORS[failure.name]
        assert failure.offset is not None
    assert {record.name for record in report} == (
        {f"file{i}.txt" for i in range(MEMBERS)} - set(_INJECTED))
    _assert_survivors_identical(report, tmp_path, clean_outputs)


def test_serial_abort_raises_first_failure(archive_bytes, tmp_path):
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, fault_plan=_fault_plan())
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        with pytest.raises(VxaError):
            archive.extract_into(tmp_path)


def test_serial_skip_records_without_quarantine(archive_bytes, tmp_path):
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, on_error=vxa.ON_ERROR_SKIP,
                              fault_plan=_fault_plan())
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path)
    assert {failure.name for failure in report.failures} == set(_INJECTED)
    assert report.quarantined == []


def test_serial_kill_worker_is_contained(archive_bytes, clean_outputs,
                                         tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER),))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path)
    assert report.quarantined == ["file2.txt"]
    assert report.failures[0].error_type == "WorkerCrashed"
    _assert_survivors_identical(report, tmp_path, clean_outputs)


# -- parallel salvage: the jobs x executor x engine matrix -------------------------


@pytest.mark.parametrize("engine", ["translator", "interpreter"])
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_thread_salvage_matrix(archive_bytes, clean_outputs, tmp_path,
                               jobs, engine):
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, engine=engine,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              jobs=jobs, executor="thread",
                              fault_plan=_fault_plan())
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path)
    assert {failure.name for failure in report.failures} == set(_INJECTED)
    assert sorted(report.quarantined) == sorted(_INJECTED)
    _assert_survivors_identical(report, tmp_path, clean_outputs)


@pytest.mark.parametrize("engine,jobs", [("translator", 2),
                                         ("interpreter", 4)])
def test_process_salvage(archive_bytes, clean_outputs, tmp_path, engine,
                         jobs):
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, engine=engine,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              jobs=jobs, executor="process",
                              fault_plan=_fault_plan(
                                  ledger=str(tmp_path / "ledger")))
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path / "out")
    assert {failure.name for failure in report.failures} == set(_INJECTED)
    _assert_survivors_identical(report, tmp_path / "out", clean_outputs)


# -- worker crash recovery ---------------------------------------------------------


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_single_kill_is_retried_and_recovered(archive_bytes, clean_outputs,
                                              tmp_path, executor):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER, times=1),),
        ledger=str(tmp_path / "ledger"))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              jobs=2, executor=executor, fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path / "out")
    assert report.failures == []
    assert {record.name for record in report} == {
        f"file{i}.txt" for i in range(MEMBERS)}
    _assert_survivors_identical(report, tmp_path / "out", clean_outputs)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_repeat_killer_is_quarantined(archive_bytes, clean_outputs,
                                      tmp_path, executor):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER, times=3),),
        ledger=str(tmp_path / "ledger"))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA,
                              on_error=vxa.ON_ERROR_QUARANTINE,
                              jobs=2, executor=executor, fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.extract_into(tmp_path / "out")
    assert report.quarantined == ["file2.txt"]
    [failure] = report.failures
    assert failure.error_type == "WorkerCrashed"
    assert failure.attempts == 2  # shard attempt + one lone retry
    assert {record.name for record in report} == (
        {f"file{i}.txt" for i in range(MEMBERS)} - {"file2.txt"})
    _assert_survivors_identical(report, tmp_path / "out", clean_outputs)


def test_check_recovers_from_worker_crash(archive_bytes, tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER, times=1),),
        ledger=str(tmp_path / "ledger"))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, jobs=2, executor="thread",
                              fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.check()
    assert report.checked == MEMBERS
    assert report.passed == MEMBERS
    assert report.failures == []


def test_check_quarantines_repeat_killer(archive_bytes, tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER, times=5),),
        ledger=str(tmp_path / "ledger"))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, jobs=2, executor="thread",
                              fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        report = archive.check()
    assert report.checked == MEMBERS
    assert report.passed == MEMBERS - 1
    assert len(report.failures) == 1
    assert report.failures[0].startswith("file2.txt:")


def test_abort_mode_propagates_crash(archive_bytes, tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file2.txt", kind=KIND_KILL_WORKER),))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, jobs=2, executor="thread",
                              fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        with pytest.raises(WorkerCrashed):
            archive.extract_into(tmp_path)


def test_injected_syscall_fault_names_the_call(archive_bytes, tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file0.txt", kind=KIND_SYSCALL_ERROR, at=2),))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        with pytest.raises(InjectedFault, match="system call #2"):
            archive.extract("file0.txt")


def test_exhaust_fuel_fires_resource_limit(archive_bytes, tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(member="file0.txt", kind=KIND_EXHAUST_FUEL, at=50),))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, fault_plan=plan)
    with vxa.open(io.BytesIO(archive_bytes), options) as archive:
        with pytest.raises(ResourceLimitExceeded):
            archive.extract("file0.txt")
