"""Integration tests for the VXA core: vxZIP writer and vxUnZIP reader."""

import io
import zipfile

import numpy as np
import pytest

from repro.codecs.registry import CodecRegistry, default_registry
from repro.codecs.vxz import VxzCodec
from repro.core.archive_reader import ArchiveReader, MODE_NATIVE, MODE_VXA
from repro.core.archive_writer import ArchiveWriter, create_archive
from repro.core.extension import VxaExtension, parse_extension
from repro.core.policy import SecurityAttributes, VmReusePolicy, reuse_groups
from repro.core.integrity import check_archive, format_report, is_archive_intact
from repro.elf.reader import is_vxa_executable
from repro.errors import ArchiveError, DecoderMissingError, GuestFault, IntegrityError
from repro.formats.bmp import is_bmp
from repro.formats.ppm import write_ppm
from repro.formats.wav import is_wav, write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_log_bytes, synthetic_source_tree_bytes


@pytest.fixture(scope="module")
def sample_files():
    return {
        "src/driver.c": synthetic_source_tree_bytes(12000, seed=50),
        "logs/boot.log": synthetic_log_bytes(6000, seed=51),
        "music/song.wav": write_wav(
            synthetic_music(seconds=0.3, sample_rate=16000, channels=2, seed=52)
        ),
        "photos/shot.ppm": write_ppm(synthetic_photo(48, 40, seed=53)),
    }


@pytest.fixture(scope="module")
def archive_and_manifest(sample_files):
    writer = ArchiveWriter(allow_lossy=True)
    for name, data in sample_files.items():
        writer.add_file(name, data)
    archive = writer.finish()
    return archive, writer.manifest


# -- writer behaviour ---------------------------------------------------------------


def test_archive_lists_all_files(archive_and_manifest, sample_files):
    archive, _ = archive_and_manifest
    reader = ArchiveReader(archive)
    assert set(reader.names()) == set(sample_files)


def test_codec_selection_per_file(archive_and_manifest):
    _, manifest = archive_and_manifest
    by_name = {info.name: info for info in manifest.files}
    assert by_name["src/driver.c"].codec == "vxz"           # default general codec
    assert by_name["music/song.wav"].codec == "vxflac"       # lossless audio
    assert by_name["photos/shot.ppm"].codec in ("vximg", "vxjp2")   # lossy allowed
    for info in manifest.files:
        assert info.stored_size < info.original_size          # everything compressed


def test_decoders_are_deduplicated(sample_files):
    writer = ArchiveWriter()
    # Two text files share the default codec: only one decoder gets stored.
    writer.add_file("a.txt", sample_files["src/driver.c"])
    writer.add_file("b.txt", sample_files["logs/boot.log"])
    writer.finish()
    assert len(writer.manifest.decoders) == 1
    assert writer.manifest.decoders[0].codec_name == "vxz"


def test_lossy_requires_permission(sample_files):
    writer = ArchiveWriter(allow_lossy=False)
    info = writer.add_file("photo.ppm", sample_files["photos/shot.ppm"])
    chosen = default_registry().get(info.codec)
    assert not chosen.info.lossy          # lossless fallback without permission


def test_redec_path_stores_precompressed_data_untouched(sample_files):
    codec = VxzCodec()
    already_compressed = codec.encode(sample_files["src/driver.c"])
    writer = ArchiveWriter()
    info = writer.add_file("bundle.vxz", already_compressed)
    archive = writer.finish()
    assert info.precompressed
    assert info.stored_size == len(already_compressed)
    # Old tools see a method-0 member holding the original compressed bytes.
    with zipfile.ZipFile(io.BytesIO(archive)) as handle:
        assert handle.read("bundle.vxz") == already_compressed


def test_store_raw_files_have_no_decoder():
    writer = ArchiveWriter()
    writer.add_file("plain.txt", b"tiny", store_raw=True)
    archive = writer.finish()
    reader = ArchiveReader(archive)
    assert reader.extension_for("plain.txt") is None
    assert reader.extract("plain.txt").data == b"tiny"
    assert not writer.manifest.decoders


def test_writer_rejects_empty_name_and_reuse_after_finish():
    writer = ArchiveWriter()
    with pytest.raises(ArchiveError):
        writer.add_file("", b"data")
    writer.add_file("x", b"data")
    writer.finish()
    with pytest.raises(ArchiveError):
        writer.add_file("y", b"data")


# -- extension headers and decoder pseudo-files -----------------------------------------


def test_extension_header_round_trip():
    extension = VxaExtension(
        decoder_offset=1234,
        original_size=5678,
        original_crc32=0xDEADBEEF,
        codec_name="vxz",
        precompressed=True,
        lossy=False,
    )
    parsed = parse_extension(extension.pack())
    assert parsed == extension
    assert parse_extension(b"") is None


def test_members_carry_extension_and_decoder(archive_and_manifest):
    archive, manifest = archive_and_manifest
    reader = ArchiveReader(archive)
    for name in reader.names():
        extension = reader.extension_for(name)
        assert extension is not None
        assert extension.codec_name in default_registry().names
        image = reader.decoder_image_for(name)
        assert is_vxa_executable(image)
    # The archive embeds one decoder per distinct codec used.
    codecs_used = {info.codec for info in manifest.files}
    assert len(manifest.decoders) == len(codecs_used)


def test_old_zip_tools_can_list_but_not_extract_vxa_members(archive_and_manifest):
    archive, _ = archive_and_manifest
    with zipfile.ZipFile(io.BytesIO(archive)) as handle:
        names = set(handle.namelist())
        assert "src/driver.c" in names                 # listing works
        info = handle.getinfo("src/driver.c")
        assert info.compress_type not in (zipfile.ZIP_STORED, zipfile.ZIP_DEFLATED)
        with pytest.raises(NotImplementedError):
            handle.read("src/driver.c")                # extraction needs VXA


# -- reader behaviour ---------------------------------------------------------------------


def test_extract_native_fast_path(archive_and_manifest, sample_files):
    archive, _ = archive_and_manifest
    reader = ArchiveReader(archive)
    result = reader.extract("src/driver.c", mode=MODE_NATIVE)
    assert not result.used_vxa_decoder
    assert result.data == sample_files["src/driver.c"]


def test_extract_with_archived_decoder_matches_native(archive_and_manifest, sample_files):
    archive, _ = archive_and_manifest
    reader = ArchiveReader(archive)
    vxa = reader.extract("src/driver.c", mode=MODE_VXA)
    native = reader.extract("src/driver.c", mode=MODE_NATIVE)
    assert vxa.used_vxa_decoder
    assert vxa.data == native.data == sample_files["src/driver.c"]


def test_extract_without_codec_knowledge(archive_and_manifest, sample_files):
    """The critical durability property: a reader with an *empty* codec set
    can still decode everything, because decoders travel with the archive."""
    archive, _ = archive_and_manifest
    empty_registry = CodecRegistry([VxzCodec()], default="vxz")
    empty_registry.unregister  # (still has the mandatory default, but nothing else)
    reader = ArchiveReader(archive, registry=CodecRegistry([VxzCodec()], default="vxz"))
    # Remove even the default from lookups by asking for VXA mode explicitly.
    extracted = reader.extract_all(mode=MODE_VXA)
    assert extracted["src/driver.c"].data == sample_files["src/driver.c"]
    for result in extracted.values():
        assert result.used_vxa_decoder
    # Media files decode to the simple uncompressed formats of Table 1.
    assert is_wav(extracted["music/song.wav"].data)
    assert is_bmp(extracted["photos/shot.ppm"].data)


def test_lossy_member_decodes_to_recorded_reference(archive_and_manifest, sample_files):
    archive, _ = archive_and_manifest
    reader = ArchiveReader(archive)
    result = reader.extract("photos/shot.ppm", mode=MODE_VXA)
    assert is_bmp(result.data)
    extension = reader.extension_for("photos/shot.ppm")
    assert extension.lossy
    assert len(result.data) == extension.original_size


def test_native_mode_fails_when_codec_unknown(archive_and_manifest):
    archive, _ = archive_and_manifest
    audio_free = CodecRegistry([VxzCodec()], default="vxz")
    reader = ArchiveReader(archive, registry=audio_free)
    with pytest.raises(DecoderMissingError):
        reader.extract("music/song.wav", mode=MODE_NATIVE)
    # AUTO mode falls back to the archived decoder instead.
    fallback = reader.extract("music/song.wav")
    assert fallback.used_vxa_decoder


def test_precompressed_member_left_compressed_by_default(sample_files):
    codec = VxzCodec()
    compressed = codec.encode(sample_files["logs/boot.log"])
    archive, _ = create_archive({"logs.vxz": compressed})
    reader = ArchiveReader(archive)
    default = reader.extract("logs.vxz")
    assert not default.decoded
    assert default.data == compressed
    forced = reader.extract("logs.vxz", force_decode=True)
    assert forced.decoded
    assert forced.data == sample_files["logs/boot.log"]


def test_corrupted_member_fails_integrity(archive_and_manifest):
    archive, _ = archive_and_manifest
    corrupted = bytearray(archive)
    reader = ArchiveReader(archive)
    entry = reader.entries()[0]
    # Flip a byte in the middle of the member's stored *data* region (past the
    # 30-byte local header, the filename and the VXA extension header).
    data_start = entry.local_header_offset + 30 + len(entry.name.encode()) + len(entry.extra)
    corrupted[data_start + entry.compressed_size // 2] ^= 0xFF
    bad_reader = ArchiveReader(bytes(corrupted))
    with pytest.raises((IntegrityError, ArchiveError, GuestFault)):
        bad_reader.extract(entry.name, mode=MODE_VXA)


# -- integrity checking ----------------------------------------------------------------------


def test_integrity_check_passes_for_good_archive(archive_and_manifest):
    archive, _ = archive_and_manifest
    report = check_archive(archive)
    assert report.ok
    assert report.checked == report.passed == 4
    assert "OK" in format_report(report)
    assert is_archive_intact(archive)


def test_integrity_check_detects_corruption(archive_and_manifest):
    archive, _ = archive_and_manifest
    reader = ArchiveReader(archive)
    entry = reader.entries()[0]
    corrupted = bytearray(archive)
    corrupted[entry.local_header_offset + 64] ^= 0x55
    report = check_archive(bytes(corrupted))
    assert not report.ok
    assert report.failures
    assert not is_archive_intact(bytes(corrupted))


# -- VM reuse policy ---------------------------------------------------------------------------


def test_reuse_groups_policies():
    files = [
        ("a", SecurityAttributes(owner=0, mode=0o644)),
        ("b", SecurityAttributes(owner=0, mode=0o644)),
        ("secret", SecurityAttributes(owner=0, mode=0o600)),
        ("c", SecurityAttributes(owner=0, mode=0o600)),
    ]
    fresh = reuse_groups(files, VmReusePolicy.ALWAYS_FRESH)
    assert fresh == [["a"], ["b"], ["secret"], ["c"]]
    grouped = reuse_groups(files, VmReusePolicy.REUSE_SAME_ATTRIBUTES)
    assert grouped == [["a", "b"], ["secret", "c"]]
    always = reuse_groups(files, VmReusePolicy.ALWAYS_REUSE)
    assert always == [["a", "b", "secret", "c"]]


def test_integrity_check_with_reuse_policy(archive_and_manifest):
    archive, _ = archive_and_manifest
    report = check_archive(archive, reuse_policy=VmReusePolicy.ALWAYS_REUSE)
    assert report.ok


def test_manifest_reports_decoder_overhead(archive_and_manifest):
    archive, manifest = archive_and_manifest
    assert manifest.archive_size == len(archive)
    assert 0 < manifest.decoder_overhead_bytes < manifest.archive_size
    assert 0 < manifest.decoder_overhead_fraction < 1
