"""Round-trip tests for the native (Python) side of every codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.vxbwt import VxbwtCodec
from repro.codecs.vxflac import VxflacCodec
from repro.codecs.vximg import VximgCodec, rgb_to_ycbcr, ycbcr_to_rgb
from repro.codecs.vxjp2 import Vxjp2Codec, rct_forward, rct_inverse
from repro.codecs.vxsnd import VxsndCodec
from repro.codecs.vxz import VxzCodec
from repro.errors import CodecError
from repro.formats.bmp import read_bmp
from repro.formats.ppm import write_ppm
from repro.formats.wav import WavAudio, read_wav, write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_source_tree_bytes


# -- helpers -------------------------------------------------------------------


def sample_text(size: int = 20000) -> bytes:
    return synthetic_source_tree_bytes(size, seed=3)


# -- vxz -----------------------------------------------------------------------


def test_vxz_round_trip_text():
    codec = VxzCodec()
    data = sample_text()
    encoded = codec.encode(data)
    assert encoded[:4] == b"VXZ1"
    assert codec.decode(encoded) == data
    assert len(encoded) < len(data) // 2   # source-like text compresses well


def test_vxz_empty_and_tiny_inputs():
    codec = VxzCodec()
    for data in (b"", b"a", b"ab", b"abc", b"\x00" * 5):
        assert codec.decode(codec.encode(data)) == data


def test_vxz_incompressible_data_round_trips():
    rng = np.random.default_rng(5)
    data = rng.integers(0, 256, size=30000, dtype=np.uint8).tobytes()
    codec = VxzCodec()
    assert codec.decode(codec.encode(data)) == data


def test_vxz_rejects_corrupt_magic():
    codec = VxzCodec()
    encoded = bytearray(codec.encode(b"hello world"))
    encoded[0] = ord("X")
    with pytest.raises(CodecError):
        codec.decode(bytes(encoded))


def test_vxz_rejects_truncated_stream():
    codec = VxzCodec()
    encoded = codec.encode(sample_text(5000))
    with pytest.raises(CodecError):
        codec.decode(encoded[: len(encoded) // 2])


def test_vxz_detects_length_mismatch():
    codec = VxzCodec()
    encoded = bytearray(codec.encode(b"hello hello hello hello"))
    encoded[4:8] = (999).to_bytes(4, "little")
    with pytest.raises(CodecError):
        codec.decode(bytes(encoded))


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=3000))
def test_vxz_round_trip_property(data):
    codec = VxzCodec(max_chain=16)
    assert codec.decode(codec.encode(data)) == data


# -- vxbwt ----------------------------------------------------------------------


def test_vxbwt_round_trip_text():
    codec = VxbwtCodec(block_size=16 * 1024)
    data = sample_text(60000)
    encoded = codec.encode(data)
    assert encoded[:4] == b"VXB1"
    assert codec.decode(encoded) == data
    assert len(encoded) < len(data) // 2


def test_vxbwt_multiple_blocks():
    codec = VxbwtCodec(block_size=2048)
    data = sample_text(9000)
    encoded = codec.encode(data)
    assert codec.decode(encoded) == data


def test_vxbwt_empty_input():
    codec = VxbwtCodec()
    assert codec.decode(codec.encode(b"")) == b""


def test_vxbwt_degenerate_runs():
    codec = VxbwtCodec(block_size=4096)
    data = b"\x00" * 10000 + b"a" * 5000 + bytes(range(256)) * 4
    assert codec.decode(codec.encode(data)) == data


def test_vxbwt_rejects_bad_block_size():
    with pytest.raises(ValueError):
        VxbwtCodec(block_size=10)


@settings(max_examples=15, deadline=None)
@given(st.binary(max_size=2000))
def test_vxbwt_round_trip_property(data):
    codec = VxbwtCodec(block_size=1024)
    assert codec.decode(codec.encode(data)) == data


# -- vximg ----------------------------------------------------------------------


def test_vximg_round_trip_quality():
    codec = VximgCodec(quality=85)
    pixels = synthetic_photo(96, 80, seed=1)
    encoded = codec.encode_pixels(pixels)
    assert encoded[:4] == b"VXI1"
    assert len(encoded) < pixels.nbytes // 3
    decoded = read_bmp(codec.decode(encoded))
    assert decoded.shape == pixels.shape
    error = np.abs(decoded.astype(int) - pixels.astype(int)).mean()
    assert error < 12.0        # lossy but close at quality 85


def test_vximg_lower_quality_is_smaller_and_worse():
    pixels = synthetic_photo(96, 96, seed=2)
    high = VximgCodec(quality=90).encode_pixels(pixels)
    low = VximgCodec(quality=20).encode_pixels(pixels)
    assert len(low) < len(high)
    error_high = np.abs(
        read_bmp(VximgCodec().decode(high)).astype(int) - pixels.astype(int)
    ).mean()
    error_low = np.abs(
        read_bmp(VximgCodec().decode(low)).astype(int) - pixels.astype(int)
    ).mean()
    assert error_low >= error_high


def test_vximg_accepts_ppm_input():
    pixels = synthetic_photo(40, 40, seed=3)
    codec = VximgCodec()
    encoded = codec.encode(write_ppm(pixels))
    decoded = read_bmp(codec.decode(encoded))
    assert decoded.shape == pixels.shape


def test_vximg_non_multiple_of_eight_dimensions():
    pixels = synthetic_photo(37, 29, seed=4)
    codec = VximgCodec(quality=90)
    decoded = read_bmp(codec.decode(codec.encode_pixels(pixels)))
    assert decoded.shape == (29, 37, 3)


def test_vximg_rejects_corrupt_stream():
    codec = VximgCodec()
    encoded = codec.encode_pixels(synthetic_photo(32, 32, seed=5))
    with pytest.raises(CodecError):
        codec.decode(encoded[:40])


def test_color_conversion_round_trip_is_close():
    rng = np.random.default_rng(0)
    rgb = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
    ycc = rgb_to_ycbcr(rgb)
    back = ycbcr_to_rgb(ycc)
    assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 4


# -- vxjp2 ----------------------------------------------------------------------


def test_vxjp2_lossless_at_quality_100():
    codec = Vxjp2Codec(quality=100, levels=3)
    pixels = synthetic_photo(64, 48, seed=6)
    decoded = read_bmp(codec.decode(codec.encode_pixels(pixels)))
    assert np.array_equal(decoded, pixels)


def test_vxjp2_lossy_round_trip():
    codec = Vxjp2Codec(quality=60, levels=3)
    pixels = synthetic_photo(80, 72, seed=7)
    encoded = codec.encode_pixels(pixels)
    assert encoded[:4] == b"VXJ2"
    decoded = read_bmp(codec.decode(encoded))
    assert decoded.shape == pixels.shape
    assert np.abs(decoded.astype(int) - pixels.astype(int)).mean() < 10.0
    assert len(encoded) < pixels.nbytes


def test_vxjp2_odd_dimensions_are_padded_and_cropped():
    codec = Vxjp2Codec(quality=100, levels=2)
    pixels = synthetic_photo(33, 21, seed=8)
    decoded = read_bmp(codec.decode(codec.encode_pixels(pixels)))
    assert np.array_equal(decoded, pixels)


def test_rct_round_trip_exact():
    rng = np.random.default_rng(1)
    rgb = rng.integers(0, 256, size=(20, 20, 3), dtype=np.uint8)
    assert np.array_equal(rct_inverse(rct_forward(rgb)), rgb)


def test_vxjp2_rejects_bad_levels():
    with pytest.raises(ValueError):
        Vxjp2Codec(levels=9)


# -- vxflac ----------------------------------------------------------------------


def test_vxflac_lossless_round_trip():
    codec = VxflacCodec(block_size=1024)
    audio = synthetic_music(seconds=1.0, sample_rate=22050, channels=2, seed=9)
    wav = write_wav(audio)
    encoded = codec.encode(wav)
    assert encoded[:4] == b"VXF1"
    assert len(encoded) < len(wav)          # music compresses losslessly
    decoded = read_wav(codec.decode(encoded))
    assert decoded.sample_rate == audio.sample_rate
    assert np.array_equal(decoded.samples, audio.samples)


def test_vxflac_mono_and_short_blocks():
    codec = VxflacCodec(block_size=256)
    audio = synthetic_music(seconds=0.3, sample_rate=8000, channels=1, seed=10)
    decoded = read_wav(codec.decode(codec.encode(write_wav(audio))))
    assert np.array_equal(decoded.samples, audio.samples)


def test_vxflac_handles_silence_and_noise():
    silence = WavAudio(8000, np.zeros((2000, 1), dtype=np.int16))
    rng = np.random.default_rng(2)
    noise = WavAudio(8000, rng.integers(-32768, 32767, size=(2000, 2), dtype=np.int16))
    codec = VxflacCodec(block_size=512)
    for audio in (silence, noise):
        decoded = read_wav(codec.decode(codec.encode(write_wav(audio))))
        assert np.array_equal(decoded.samples, audio.samples)
    # Silence should compress dramatically better than noise.
    assert len(codec.encode(write_wav(silence))) < len(codec.encode(write_wav(noise))) // 4


def test_vxflac_rejects_non_wav_input():
    with pytest.raises(Exception):
        VxflacCodec().encode(b"definitely not audio")


# -- vxsnd ----------------------------------------------------------------------


def test_vxsnd_lossy_round_trip():
    codec = VxsndCodec(block_size=512)
    audio = synthetic_music(seconds=0.5, sample_rate=16000, channels=2, seed=11)
    wav = write_wav(audio)
    encoded = codec.encode(wav)
    assert encoded[:4] == b"VXS1"
    # 4 bits per sample -> roughly 4x smaller than 16-bit PCM.
    assert len(encoded) < len(wav) // 3
    decoded = read_wav(codec.decode(encoded))
    assert decoded.samples.shape == audio.samples.shape
    # ADPCM is lossy but should track the waveform.
    original = audio.samples.astype(np.float64)
    restored = decoded.samples.astype(np.float64)
    noise = np.sqrt(np.mean((original - restored) ** 2))
    signal = np.sqrt(np.mean(original**2)) + 1e-9
    assert noise / signal < 0.2


def test_vxsnd_mono():
    codec = VxsndCodec(block_size=128)
    audio = synthetic_music(seconds=0.2, sample_rate=8000, channels=1, seed=12)
    decoded = read_wav(codec.decode(codec.encode(write_wav(audio))))
    assert decoded.samples.shape == audio.samples.shape


def test_vxsnd_rejects_corrupt_header():
    codec = VxsndCodec()
    with pytest.raises(CodecError):
        codec.decode(b"VXS1" + b"\x00" * 3)


# -- cross-codec behaviours ---------------------------------------------------------


def test_codecs_recognise_their_own_magic():
    from repro.codecs.registry import default_registry

    registry = default_registry()
    text = sample_text(4000)
    encoded = registry.get("vxz").encode(text)
    assert registry.recognize_compressed(encoded).name == "vxz"
    assert registry.recognize_compressed(text) is None


def test_registry_selects_media_codecs_for_media():
    from repro.codecs.registry import default_registry

    registry = default_registry()
    wav = write_wav(synthetic_music(seconds=0.1, sample_rate=8000, channels=1, seed=13))
    ppm = write_ppm(synthetic_photo(16, 16, seed=14))
    assert registry.select_for_raw(wav).name == "vxflac"       # lossless default
    assert registry.select_for_raw(b"plain text").name == "vxz"
    assert registry.select_for_raw(ppm, allow_lossy=True).name in ("vximg", "vxjp2")
    # Without permission for loss, raw images fall back to a lossless codec.
    assert not registry.select_for_raw(ppm, allow_lossy=False).info.lossy


def test_registry_inventory_matches_table1_shape():
    from repro.codecs.registry import default_registry

    rows = default_registry().inventory()
    assert len(rows) == 6
    names = {row["decoder"] for row in rows}
    assert names == {"vxz", "vxbwt", "vximg", "vxjp2", "vxflac", "vxsnd"}
    assert {row["output_format"] for row in rows} == {"raw data", "BMP image", "WAV audio"}
