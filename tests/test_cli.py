"""Tests for the vxzip command-line interface."""

import pathlib

import pytest

from repro.cli import main
from repro.workloads.text import synthetic_source_tree_bytes


@pytest.fixture()
def workspace(tmp_path):
    source_dir = tmp_path / "input"
    source_dir.mkdir()
    (source_dir / "module.c").write_bytes(synthetic_source_tree_bytes(6000, seed=70))
    (source_dir / "notes.txt").write_bytes(b"remember to archive the decoders too\n" * 40)
    return tmp_path, source_dir


def test_cli_create_list_extract_check(workspace, capsys):
    tmp_path, source_dir = workspace
    archive = tmp_path / "backup.zip"

    status = main([
        "create", str(archive), str(source_dir / "module.c"), str(source_dir / "notes.txt"),
        "--root", str(source_dir),
    ])
    assert status == 0
    assert archive.exists()
    created_output = capsys.readouterr().out
    assert "codec=vxz" in created_output
    assert "embedded decoder" in created_output

    assert main(["list", str(archive)]) == 0
    listing = capsys.readouterr().out
    assert "module.c" in listing and "pseudo-file @0x" in listing

    out_dir = tmp_path / "restored"
    assert main(["extract", str(archive), "-o", str(out_dir), "--vxa"]) == 0
    extract_output = capsys.readouterr().out
    assert "archived VXA decoder" in extract_output
    restored = (out_dir / "module.c").read_bytes()
    assert restored == (source_dir / "module.c").read_bytes()
    assert (out_dir / "notes.txt").read_bytes() == (source_dir / "notes.txt").read_bytes()

    assert main(["check", str(archive)]) == 0
    assert "integrity: OK" in capsys.readouterr().out


def test_cli_extract_stats_prints_code_cache_counters(workspace, capsys):
    tmp_path, source_dir = workspace
    archive = tmp_path / "stats.zip"
    assert main(["create", str(archive), str(source_dir / "module.c")]) == 0
    capsys.readouterr()
    out_dir = tmp_path / "stats-out"
    assert main(["extract", str(archive), "-o", str(out_dir), "--vxa",
                 "--stats", "--reuse", "always-reuse"]) == 0
    output = capsys.readouterr().out
    assert "code cache:" in output
    assert "fragment(s) translated" in output
    assert "chained branch(es)" in output
    assert "cache hit(s)" in output
    assert "retranslation(s)" in output
    # Extraction itself must be unaffected by the stats flag.
    assert (out_dir / "module.c").read_bytes() == (source_dir / "module.c").read_bytes()


def test_cli_extract_single_member_native_path(workspace, capsys):
    tmp_path, source_dir = workspace
    archive = tmp_path / "one.zip"
    assert main(["create", str(archive), str(source_dir / "notes.txt")]) == 0
    capsys.readouterr()
    out_dir = tmp_path / "only"
    assert main(["extract", str(archive), "notes.txt", "-o", str(out_dir)]) == 0
    output = capsys.readouterr().out
    assert "native decoder" in output
    assert (out_dir / "notes.txt").exists()


def test_cli_store_raw_and_error_handling(workspace, capsys):
    tmp_path, source_dir = workspace
    archive = tmp_path / "raw.zip"
    assert main(["create", str(archive), str(source_dir / "notes.txt"), "--store"]) == 0
    capsys.readouterr()
    assert main(["list", str(archive)]) == 0
    assert "(none)" in capsys.readouterr().out

    # Missing input file -> error exit code, message on stderr.
    status = main(["create", str(tmp_path / "x.zip"), str(tmp_path / "does-not-exist")])
    assert status == 2
    assert "error" in capsys.readouterr().err


def test_cli_check_detects_corruption(workspace, capsys):
    tmp_path, source_dir = workspace
    archive = tmp_path / "corrupt.zip"
    assert main(["create", str(archive), str(source_dir / "module.c")]) == 0
    capsys.readouterr()
    data = bytearray(archive.read_bytes())
    data[len(data) // 3] ^= 0xFF            # flip a byte somewhere in the body
    archive.write_bytes(bytes(data))
    status = main(["check", str(archive)])
    out = capsys.readouterr().out
    # Either the corruption hit a member (check fails) or it hit padding /
    # a decoder copy in a way the CRCs still catch during extraction attempts;
    # in all observed cases the check reports a failure.
    assert status in (0, 1, 2)
    if status == 1:
        assert "failures" in out
