"""End-to-end salvage from genuinely hostile archives.

Where :mod:`tests.test_faults` injects failures through the
:class:`~repro.faults.FaultPlan` hooks, this suite builds archives whose
*embedded guest decoders* misbehave on their own: an infinite-loop decoder,
an out-of-bounds-store decoder, and a member whose stored payload has been
corrupted by byte surgery on the archive file.  ``--keep-going`` must
extract every well-behaved member byte-identically anyway, at any job
count, on both engines, and ``vxserve`` must survive serving the archive.
"""

from __future__ import annotations

import io
import pathlib
import time

import pytest

import repro.api as vxa
from repro.api.archive import Archive
from repro.api.builder import ArchiveBuilder
from repro.api.options import EXECUTOR_THREAD, ReadOptions, WriteOptions
from repro.codecs.base import Codec, CodecInfo
from repro.codecs.registry import CodecRegistry
from repro.errors import DeadlineExceeded
from tests.conftest import build_asm

# First payload byte steers the trap decoder.
SPIN = 0xAA      # wedge in an infinite loop
SMASH = 0xBB     # out-of-bounds store -> MemoryFault

GOOD = {
    "good0.txt": b"alpha " * 200,
    "good1.txt": b"bravo " * 300,
    "good2.txt": b"charlie " * 150,
}
HOSTILE = {"spin.bin", "smash.bin", "corrupt.bin"}

# A recognisable run we can find (and vandalise) in the raw archive bytes;
# the trap codec stores payloads verbatim, so it appears literally.
CORRUPT_MARKER = b"\x01CORRUPTION-TARGET-0123456789"


class TrapCodec(Codec):
    """Identity codec whose *guest* decoder misbehaves on marked payloads.

    The native encoder stores payloads verbatim, so the archived bytes are
    the member content -- which both lets the guest branch on the first
    payload byte and lets tests corrupt a member with ``bytes.find`` on
    the finished archive.
    """

    info = CodecInfo(
        name="trap",
        description="identity codec with a booby-trapped guest decoder",
        availability="tests only",
        output_format="raw data",
        category="general",
        lossy=False,
    )

    def encode(self, data: bytes, **options) -> bytes:
        return data

    def decode(self, data: bytes) -> bytes:
        return data

    def can_encode(self, data: bytes) -> bool:
        return True

    @property
    def magic(self) -> bytes:
        return b"TRP0"

    def guest_units(self):  # pragma: no cover - image built from asm below
        raise NotImplementedError("trap decoder is assembled, not compiled")

    def guest_decoder_image(self) -> bytes:
        return _trap_image()


_TRAP_IMAGE: bytes | None = None


def _trap_image() -> bytes:
    global _TRAP_IMAGE
    if _TRAP_IMAGE is None:
        _TRAP_IMAGE = build_asm(
            f"""
            ; echo stdin to stdout -- unless the first byte asks for trouble:
            ;   0x{SPIN:02x} -> spin forever   0x{SMASH:02x} -> out-of-bounds store
            _start:
                movi r0, 1            ; READ
                movi r1, 0            ; stdin
                movi r2, buffer
                movi r3, 4096
                vxcall
                mov  r4, r0           ; n = bytes read
                movi r5, buffer
                ld8u r6, [r5+0]
                cmpi r6, {SPIN}
                je   spin
                cmpi r6, {SMASH}
                je   smash
                mov  r3, r4           ; count = n
                movi r0, 2            ; WRITE
                movi r1, 1            ; stdout
                movi r2, buffer
                vxcall
                movi r0, 0            ; EXIT
                movi r1, 0
                vxcall
            spin:
                jmp  spin
            smash:
                movi r1, 0x7fffff00   ; far outside any sandbox
                st32 [r1+0], r0
                jmp  smash
            .data
            buffer:
                .space 4096
            """
        )
    return _TRAP_IMAGE


def _build_hostile_archive() -> bytes:
    registry = CodecRegistry([TrapCodec()], default="trap")
    buffer = io.BytesIO()
    with ArchiveBuilder(buffer, WriteOptions(registry=registry)) as builder:
        for name, data in GOOD.items():
            builder.add(name, data, codec="trap")
        builder.add("spin.bin", bytes([SPIN]) + b"wedge " * 64,
                    codec="trap")
        builder.add("smash.bin", bytes([SMASH]) + b"stomp " * 64,
                    codec="trap")
        builder.add("corrupt.bin", CORRUPT_MARKER + b"x" * 500,
                    codec="trap")
        builder.finish()
    payload = buffer.getvalue()
    # Byte surgery: flip one bit inside corrupt.bin's stored payload.  The
    # identity encoding guarantees the marker appears verbatim exactly once.
    at = payload.find(CORRUPT_MARKER)
    assert at >= 0 and payload.find(CORRUPT_MARKER, at + 1) < 0
    target = at + len(CORRUPT_MARKER) + 100
    return payload[:target] + bytes([payload[target] ^ 0x40]) + payload[target + 1:]


@pytest.fixture(scope="module")
def hostile_archive(tmp_path_factory) -> pathlib.Path:
    path = tmp_path_factory.mktemp("hostile") / "hostile.zip"
    path.write_bytes(_build_hostile_archive())
    return path


def _salvage_options(engine="translator", **overrides) -> ReadOptions:
    base = dict(mode=vxa.MODE_VXA, engine=engine,
                on_error=vxa.ON_ERROR_QUARANTINE, member_deadline=0.75)
    base.update(overrides)
    return ReadOptions(**base)


def _assert_salvaged(report, out_dir):
    assert {record.name for record in report} == set(GOOD)
    assert {failure.name for failure in report.failures} == HOSTILE
    assert sorted(report.quarantined) == sorted(HOSTILE)
    for name, data in GOOD.items():
        assert (out_dir / name).read_bytes() == data
    assert not list(out_dir.glob("*.vxa-partial"))
    by_name = {failure.name: failure for failure in report.failures}
    assert by_name["spin.bin"].error_type == "DeadlineExceeded"
    assert by_name["smash.bin"].error_type == "MemoryFault"
    assert by_name["corrupt.bin"].error_type == "IntegrityError"


# -- API-level salvage matrix ------------------------------------------------------


@pytest.mark.parametrize("engine", ["translator", "interpreter"])
def test_serial_salvage_of_hostile_archive(hostile_archive, tmp_path, engine):
    with vxa.open(hostile_archive, _salvage_options(engine)) as archive:
        report = archive.extract_into(tmp_path)
    _assert_salvaged(report, tmp_path)


@pytest.mark.parametrize("engine", ["translator", "interpreter"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_salvage_of_hostile_archive(hostile_archive, tmp_path,
                                             jobs, engine):
    options = _salvage_options(engine, jobs=jobs, executor="thread")
    with vxa.open(hostile_archive, options) as archive:
        report = archive.extract_into(tmp_path)
    _assert_salvaged(report, tmp_path)


def test_process_salvage_of_hostile_archive(hostile_archive, tmp_path):
    options = _salvage_options(jobs=2, executor="process")
    with vxa.open(hostile_archive, options) as archive:
        report = archive.extract_into(tmp_path)
    _assert_salvaged(report, tmp_path)


@pytest.mark.parametrize("engine", ["translator", "interpreter"])
def test_deadline_terminates_wedged_guest_promptly(hostile_archive, engine):
    options = ReadOptions(mode=vxa.MODE_VXA, engine=engine,
                          member_deadline=0.5)
    with vxa.open(hostile_archive, options) as archive:
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            archive.extract("spin.bin")
        elapsed = time.monotonic() - started
    # One check quantum of slack on top of the deadline, not a whole
    # instruction budget's worth of spinning.
    assert elapsed < 10.0


def test_check_reports_hostile_members(hostile_archive):
    with vxa.open(hostile_archive, _salvage_options()) as archive:
        report = archive.check()
    assert not report.ok
    assert report.checked == len(GOOD) + len(HOSTILE)
    assert report.passed == len(GOOD)
    failed = {failure.split(":", 1)[0] for failure in report.failures}
    assert failed == HOSTILE


# -- CLI: vxunzip --keep-going -----------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_cli_keep_going_salvages_good_members(hostile_archive, tmp_path,
                                              capsys, jobs):
    from repro.cli import unzip_main

    out = tmp_path / "out"
    code = unzip_main([
        "extract", str(hostile_archive), "-o", str(out), "--vxa",
        "--keep-going", "--member-deadline", "0.75", "-j", str(jobs),
    ])
    assert code == 1  # failures present -> non-zero, but salvage happened
    for name, data in GOOD.items():
        assert (out / name).read_bytes() == data
    assert not (out / "spin.bin").exists()
    captured = capsys.readouterr()
    assert "quarantined" in captured.err
    assert "3 failed" in captured.err


def test_cli_abort_is_still_the_default(hostile_archive, tmp_path):
    from repro.cli import unzip_main

    code = unzip_main([
        "extract", str(hostile_archive), "-o", str(tmp_path), "--vxa",
        "--member-deadline", "0.75",
    ])
    assert code == 2  # VxaError surfaced as a CLI error


# -- vxserve keeps serving while hostile requests die at their deadline ------------


@pytest.fixture()
def clean_archive(tmp_path_factory) -> pathlib.Path:
    path = tmp_path_factory.mktemp("clean-served") / "clean.zip"
    with vxa.create(path) as builder:
        for name, data in GOOD.items():
            builder.add(name, data)
    return path


def test_vxserve_survives_hostile_archive(hostile_archive, clean_archive,
                                          tmp_path):
    from repro.parallel.service import BatchService

    service = BatchService(jobs=2, executor=EXECUTOR_THREAD,
                           request_timeout=1.0)
    try:
        hostile_dest = tmp_path / "hostile-out"
        response = service.handle({
            "id": 1, "op": "extract", "archive": str(hostile_archive),
            "dest": str(hostile_dest), "mode": "vxa",
            "on_error": "quarantine", "jobs": 2,
        })
        assert response["ok"], response
        result = response["result"]
        assert {record["name"] for record in result["records"]} == set(GOOD)
        assert {failure["name"] for failure in result["failures"]} == HOSTILE
        for name, data in GOOD.items():
            assert (hostile_dest / name).read_bytes() == data

        # The service is still healthy: control plane answers, and a clean
        # archive extracts fully.
        assert service.handle({"id": 2, "op": "ping"})["ok"]
        clean_dest = tmp_path / "clean-out"
        response = service.handle({
            "id": 3, "op": "extract", "archive": str(clean_archive),
            "dest": str(clean_dest), "jobs": 2,
        })
        assert response["ok"], response
        for name, data in GOOD.items():
            assert (clean_dest / name).read_bytes() == data

        # Drain: finishes outstanding work, then refuses new archive work
        # while the control plane stays responsive.
        response = service.handle({"id": 4, "op": "drain"})
        assert response["ok"]
        assert response["result"]["drained"] is True
        refused = service.handle({
            "id": 5, "op": "extract", "archive": str(clean_archive),
            "dest": str(tmp_path / "refused"),
        })
        assert not refused["ok"]
        assert "drain" in refused["error"]
        assert service.handle({"id": 6, "op": "stats"})["ok"]
    finally:
        service.close()
