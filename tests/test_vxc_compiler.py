"""End-to-end tests for the vxc compiler: compile programs, run them on the VM."""

import pytest

from repro.errors import VxcSemanticError, VxcSyntaxError
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine
from repro.vxc.compiler import compile_source
from repro.vxc.lexer import tokenize
from repro.vxc.parser import parse

ENGINES = [ENGINE_TRANSLATOR, ENGINE_INTERPRETER]


def run_vxc(source: str, stdin: bytes = b"", engine: str = ENGINE_TRANSLATOR):
    """Compile ``source`` and execute it in the VM; return the DecodeResult."""
    result = compile_source(source, codec_name="test")
    vm = VirtualMachine(result.elf, engine=engine)
    return vm.decode(stdin)


# -- lexer / parser ------------------------------------------------------------


def test_tokenize_basic():
    tokens = tokenize("int x = 0x10 + 'A'; // comment\n")
    kinds = [token.kind for token in tokens]
    assert kinds == ["keyword", "ident", "op", "number", "op", "number", "op", "eof"]
    assert tokens[3].value == 16
    assert tokens[5].value == 65


def test_tokenize_rejects_garbage():
    with pytest.raises(VxcSyntaxError):
        tokenize("int x = `;")


def test_tokenize_block_comment_and_string():
    tokens = tokenize('/* multi\nline */ byte s[] = "hi\\n";')
    assert tokens[0].value == "byte"
    assert any(token.kind == "string" and token.value == "hi\n" for token in tokens)


def test_parse_rejects_missing_semicolon():
    with pytest.raises(VxcSyntaxError):
        parse("int main() { return 0 }")


def test_parse_rejects_bad_assignment_target():
    with pytest.raises(VxcSyntaxError):
        parse("int main() { 1 = 2; return 0; }")


# -- semantic errors -----------------------------------------------------------


def test_missing_main_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int helper() { return 1; }")


def test_undeclared_identifier_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int main() { return nope; }")


def test_wrong_arity_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int f(int a, int b) { return a + b; } int main() { return f(1); }")


def test_break_outside_loop_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int main() { break; return 0; }")


def test_assign_to_const_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("const int K = 3; int main() { K = 4; return 0; }")


def test_index_of_scalar_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int x; int main() { return x[0]; }")


def test_duplicate_function_rejected():
    with pytest.raises(VxcSemanticError):
        compile_source("int main() { return 0; } int main() { return 1; }")


def test_indexing_parameter_suggests_peek():
    with pytest.raises(VxcSemanticError) as excinfo:
        compile_source("int f(int p) { return p[0]; } int main() { return f(0); }")
    assert "peek" in str(excinfo.value)


# -- execution semantics --------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_return_value_becomes_exit_code(engine):
    assert run_vxc("int main() { return 7; }", engine=engine).exit_code == 7


@pytest.mark.parametrize("engine", ENGINES)
def test_arithmetic_precedence(engine):
    source = "int main() { return 2 + 3 * 4 - 10 / 2; }"  # 2+12-5 = 9
    assert run_vxc(source, engine=engine).exit_code == 9


@pytest.mark.parametrize("engine", ENGINES)
def test_signed_division_and_modulo(engine):
    source = """
    int main() {
        if ((0 - 7) / 2 != 0 - 3) { return 1; }
        if ((0 - 7) % 2 != 0 - 1) { return 2; }
        if (7 / (0 - 2) != 0 - 3) { return 3; }
        return 0;
    }
    """
    assert run_vxc(source, engine=engine).exit_code == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_shift_right_is_logical_and_asr_is_arithmetic(engine):
    source = """
    int main() {
        int x;
        x = 0 - 4;                      // 0xfffffffc
        if ((x >> 1) != 0x7ffffffe) { return 1; }
        if (asr(x, 1) != 0 - 2) { return 2; }
        if (udiv(0xfffffffc, 4) != 0x3fffffff) { return 3; }
        if (umod(10, 3) != 1) { return 4; }
        return 0;
    }
    """
    assert run_vxc(source, engine=engine).exit_code == 0


def test_while_and_for_loops():
    source = """
    int main() {
        int total;
        int i;
        total = 0;
        for (i = 1; i <= 10; i = i + 1) {
            total = total + i;
        }
        while (total > 50) {
            total = total - 1;
        }
        return total;      // sum 1..10 = 55, decremented to 50
    }
    """
    assert run_vxc(source).exit_code == 50


def test_do_while_executes_at_least_once():
    source = """
    int main() {
        int n;
        n = 0;
        do { n = n + 1; } while (n < 0);
        return n;
    }
    """
    assert run_vxc(source).exit_code == 1


def test_break_and_continue():
    source = """
    int main() {
        int i;
        int total;
        total = 0;
        for (i = 0; i < 100; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i > 10) { break; }
            total = total + i;     // 1+3+5+7+9 = 25
        }
        return total;
    }
    """
    assert run_vxc(source).exit_code == 25


def test_nested_loops_with_break():
    source = """
    int main() {
        int i; int j; int hits;
        hits = 0;
        for (i = 0; i < 5; i = i + 1) {
            for (j = 0; j < 5; j = j + 1) {
                if (j == 3) { break; }
                hits = hits + 1;
            }
        }
        return hits;     // 5 * 3
    }
    """
    assert run_vxc(source).exit_code == 15


def test_logical_operators_short_circuit():
    source = """
    int calls;
    int bump() { calls = calls + 1; return 1; }
    int main() {
        calls = 0;
        if (0 && bump()) { return 100; }
        if (1 || bump()) { calls = calls; }
        if (calls != 0) { return 1; }
        if (!(3 > 2) != 0) { return 2; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_ternary_operator():
    source = "int main() { int x; x = 7; return x > 5 ? 1 : 2; }"
    assert run_vxc(source).exit_code == 1


def test_compound_assignment_and_increment():
    source = """
    int main() {
        int x;
        x = 10;
        x += 5;
        x -= 3;
        x *= 2;
        x /= 4;       // 6
        x <<= 4;      // 96
        x >>= 2;      // 24
        x |= 1;       // 25
        x &= 0x1f;    // 25
        x ^= 3;       // 26
        ++x;          // 27
        --x;          // 26
        return x;
    }
    """
    assert run_vxc(source).exit_code == 26


def test_recursion_fibonacci():
    source = """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }   // 144
    """
    assert run_vxc(source).exit_code == 144


def test_global_scalars_arrays_and_const():
    source = """
    const int SCALE = 3;
    int counter = 5;
    int table[4] = { 10, 20, 30, 40 };
    byte flags[8];
    int main() {
        int i;
        counter = counter + SCALE;            // 8
        for (i = 0; i < 8; i = i + 1) { flags[i] = i * i; }
        if (flags[7] != 49) { return 1; }
        if (table[2] != 30) { return 2; }
        table[2] = table[2] + counter;        // 38
        return table[2];
    }
    """
    assert run_vxc(source).exit_code == 38


def test_byte_arrays_are_unsigned():
    source = """
    byte data[4];
    int main() {
        data[0] = 0xff;
        if (data[0] != 255) { return 1; }
        data[1] = 300;                 // truncated to 44
        if (data[1] != 44) { return 2; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_local_arrays_and_argument_passing():
    source = """
    int sum_words(int addr, int count) {
        int i; int total;
        total = 0;
        for (i = 0; i < count; i = i + 1) {
            total = total + peek32(addr + i * 4);
        }
        return total;
    }
    int main() {
        int values[5];
        int i;
        for (i = 0; i < 5; i = i + 1) { values[i] = i + 1; }
        return sum_words(values, 5);     // 15
    }
    """
    assert run_vxc(source).exit_code == 15


def test_peek_poke_signed_variants():
    source = """
    byte scratch[8];
    int main() {
        poke8(scratch, 0xf0);
        poke16(scratch + 2, 0x8001);
        poke32(scratch + 4, 0xdeadbeef);
        if (peek8(scratch) != 0xf0) { return 1; }
        if (peek8s(scratch) != 0 - 16) { return 2; }
        if (peek16(scratch + 2) != 0x8001) { return 3; }
        if (peek16s(scratch + 2) != 0 - 32767) { return 4; }
        if (peek32(scratch + 4) != 0xdeadbeef) { return 5; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_global_initializer_expressions():
    source = """
    const int BITS = 1 << 4;
    int mask = (1 << 4) - 1;
    int main() { return BITS + mask; }     // 16 + 15
    """
    assert run_vxc(source).exit_code == 31


@pytest.mark.parametrize("engine", ENGINES)
def test_stream_io_echo_program(engine):
    source = """
    byte buffer[512];
    int main() {
        int n;
        while (1) {
            n = read(0, buffer, 512);
            if (n <= 0) { break; }
            write_full(1, buffer, n);
        }
        return 0;
    }
    """
    payload = bytes(range(256)) * 8
    result = run_vxc(source, stdin=payload, engine=engine)
    assert result.exit_code == 0
    assert result.output == payload


def test_stderr_diagnostics_via_string_literal():
    source = """
    byte message[] = "decoder warning\n";
    int main() {
        write_cstr(2, message);
        return 0;
    }
    """
    result = run_vxc(source)
    assert result.stderr == b"decoder warning\n"
    assert result.output == b""


def test_runtime_alloc_memcopy_memfill():
    source = """
    int main() {
        int a; int b; int i;
        a = alloc(1024);
        b = alloc(1024);
        memfill(a, 0xab, 1024);
        memcopy(b, a, 1024);
        for (i = 0; i < 1024; i = i + 1) {
            if (peek8(b + i) != 0xab) { return 1; }
        }
        if (a == b) { return 2; }
        heap_reset();
        if (alloc(16) != a) { return 3; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_min_max_abs_helpers():
    source = """
    int main() {
        if (min(3, 5) != 3) { return 1; }
        if (max(3, 5) != 5) { return 2; }
        if (abs32(0 - 9) != 9) { return 3; }
        if (min(0 - 2, 1) != 0 - 2) { return 4; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_load_store_le_helpers():
    source = """
    byte buf[16];
    int main() {
        store_u32le(buf, 0x11223344);
        store_u16le(buf + 4, 0xbeef);
        if (load_u32le(buf) != 0x11223344) { return 1; }
        if (load_u16le(buf + 4) != 0xbeef) { return 2; }
        if (peek8(buf) != 0x44) { return 3; }
        return 0;
    }
    """
    assert run_vxc(source).exit_code == 0


def test_translator_and_interpreter_agree_on_compiled_code():
    source = """
    int lcg;
    int next_random() {
        lcg = lcg * 1103515245 + 12345;
        return (lcg >> 16) & 0x7fff;
    }
    byte out[4096];
    int main() {
        int i;
        lcg = 42;
        for (i = 0; i < 4096; i = i + 1) {
            out[i] = next_random() & 255;
        }
        write_full(1, out, 4096);
        return 0;
    }
    """
    compiled = compile_source(source, codec_name="prng")
    outputs = []
    for engine in ENGINES:
        vm = VirtualMachine(compiled.elf, engine=engine)
        outputs.append(vm.decode(b"").output)
    assert outputs[0] == outputs[1]
    assert len(outputs[0]) == 4096


def test_compile_result_reports_code_provenance():
    source = """
    int helper(int a) { return a * 3; }
    int main() { return helper(memcopy(0, 0, 0) + 14); }
    """
    result = compile_source(source, codec_name="prov")
    assert result.note["codec"] == "prov"
    assert result.note["decoder_code_bytes"] > 0
    assert result.note["library_code_bytes"] > 0
    assert result.text_size >= (
        result.category_sizes["decoder"] + result.category_sizes["library"]
    )
    assert "main" in result.function_sizes
    assert "memcopy" in result.function_sizes
    assert result.compressed_size < result.image_size
