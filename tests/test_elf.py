"""Unit tests for the ELF32 builder and reader."""

import pytest

from repro.elf.builder import build_executable
from repro.elf.reader import is_vxa_executable, parse_executable, read_note
from repro.elf.structures import ELF_MAGIC, EM_VXA32
from repro.errors import ElfFormatError
from repro.isa.assembler import assemble

HELLO_ASM = """
_start:
    movi r0, 2          ; write
    movi r1, 1          ; stdout
    movi r2, message
    movi r3, 6
    vxcall
    movi r0, 0          ; exit
    movi r1, 0
    vxcall
.data
message:
    .ascii "hello\\n"
.bss 64
"""


@pytest.fixture()
def hello_image():
    return build_executable(assemble(HELLO_ASM), note={"codec": "demo", "decoder_bytes": 10})


def test_image_has_elf_magic(hello_image):
    assert hello_image[:4] == ELF_MAGIC


def test_parse_round_trip(hello_image):
    program = assemble(HELLO_ASM)
    image = parse_executable(hello_image)
    assert image.machine == EM_VXA32
    assert image.entry == program.entry
    assert len(image.segments) == 2
    text, data = image.segments
    assert text.executable and not text.writable
    assert data.writable and not data.executable
    assert data.data.startswith(b"hello\n")
    assert data.memsz == len(data.data) + 64  # bss follows data


def test_note_round_trip(hello_image):
    assert read_note(hello_image) == {"codec": "demo", "decoder_bytes": 10}


def test_image_without_note():
    image = build_executable(assemble("_start:\n halt\n"))
    assert read_note(image) == {}


def test_is_vxa_executable(hello_image):
    assert is_vxa_executable(hello_image)
    assert not is_vxa_executable(b"not an elf")
    assert not is_vxa_executable(hello_image[:40])


def test_reject_truncated_image(hello_image):
    with pytest.raises(ElfFormatError):
        parse_executable(hello_image[:60])


def test_reject_bad_magic(hello_image):
    corrupted = b"XXXX" + hello_image[4:]
    with pytest.raises(ElfFormatError):
        parse_executable(corrupted)


def test_reject_wrong_machine(hello_image):
    corrupted = bytearray(hello_image)
    corrupted[18:20] = (3).to_bytes(2, "little")  # EM_386
    with pytest.raises(ElfFormatError):
        parse_executable(bytes(corrupted))
    # ... unless the caller explicitly allows foreign machines.
    parse_executable(bytes(corrupted), require_vxa=False)


def test_reject_entry_outside_text(hello_image):
    corrupted = bytearray(hello_image)
    corrupted[24:28] = (0xDEAD0000).to_bytes(4, "little")  # e_entry
    with pytest.raises(ElfFormatError):
        parse_executable(bytes(corrupted))


def test_reject_segment_past_end(hello_image):
    corrupted = bytearray(hello_image)
    # First program header starts at offset 52; p_filesz is at +16.
    corrupted[52 + 16 : 52 + 20] = (0x7FFFFFFF).to_bytes(4, "little")
    with pytest.raises(ElfFormatError):
        parse_executable(bytes(corrupted))


def test_load_size_accounts_for_bss(hello_image):
    image = parse_executable(hello_image)
    data_segment = image.segments[1]
    assert image.load_size == data_segment.vaddr + data_segment.memsz
