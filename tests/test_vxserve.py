"""Tests for the ``vxserve`` batch service (:mod:`repro.parallel.service`).

Covers the request dispatcher in-process, the JSON-lines stream transport,
the unix-socket transport (with concurrent clients multiplexing onto the
shared pool), and a full subprocess round trip through ``python -m
repro.parallel.service`` -- the exact deployment shape.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import socket
import subprocess
import sys
import threading

import pytest

import repro.api as vxa
from repro.api.options import EXECUTOR_THREAD
from repro.core.policy import VmReusePolicy
from repro.parallel.service import BatchService, DEFAULT_CODE_CACHE_LIMIT
from repro.workloads import synthetic_log_bytes

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(scope="module")
def members() -> dict[str, bytes]:
    return {
        f"file{index}.txt": synthetic_log_bytes(800 + 90 * index, seed=index)
        for index in range(5)
    }


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, members) -> pathlib.Path:
    path = tmp_path_factory.mktemp("vxserve") / "served.zip"
    with vxa.create(path) as builder:
        for name, data in members.items():
            builder.add(name, data, codec="vxz")
    return path


@pytest.fixture()
def service() -> BatchService:
    instance = BatchService(jobs=2, executor=EXECUTOR_THREAD)
    yield instance
    instance.close()


# -- dispatcher ----------------------------------------------------------------


def test_ping_echoes_id(service):
    response = service.handle({"id": 41, "op": "ping"})
    assert response == {"id": 41, "ok": True, "result": response["result"]}
    assert response["result"]["pong"] is True


def test_list_members(service, archive_path, members):
    response = service.handle({"op": "list", "archive": str(archive_path)})
    assert response["ok"]
    listed = {member["name"]: member for member in response["result"]["members"]}
    assert set(listed) == set(members)
    assert all(member["has_decoder"] for member in listed.values())


def test_extract_request(tmp_path, service, archive_path, members):
    dest = tmp_path / "served-out"
    response = service.handle({
        "id": 1, "op": "extract", "archive": str(archive_path),
        "dest": str(dest), "mode": "vxa", "jobs": 2,
    })
    assert response["ok"], response
    result = response["result"]
    assert {record["name"] for record in result["records"]} == set(members)
    for name, data in members.items():
        assert (dest / name).read_bytes() == data
    assert result["stats"]["decodes"] == len(members)
    assert result["elapsed_seconds"] >= 0


def test_extract_subset_and_member_validation(tmp_path, service, archive_path):
    dest = tmp_path / "subset"
    response = service.handle({
        "op": "extract", "archive": str(archive_path), "dest": str(dest),
        "members": ["file0.txt"], "mode": "vxa",
    })
    assert response["ok"]
    assert [record["name"] for record in response["result"]["records"]] \
        == ["file0.txt"]
    escape = service.handle({
        "op": "extract", "archive": str(archive_path), "dest": str(dest),
        "members": ["../evil.txt"],
    })
    assert not escape["ok"]
    assert escape["error_type"] == "PathTraversalError"
    # An explicit empty selection extracts nothing (it is not "everything").
    empty = service.handle({
        "op": "extract", "archive": str(archive_path), "dest": str(dest),
        "members": [],
    })
    assert empty["ok"] and empty["result"]["records"] == []


def test_check_request(service, archive_path, members):
    response = service.handle({
        "op": "check", "archive": str(archive_path), "jobs": 2,
        "reuse": VmReusePolicy.REUSE_SAME_ATTRIBUTES.value,
    })
    assert response["ok"], response
    result = response["result"]
    assert result["ok"] is True
    assert result["checked"] == result["passed"] == len(members)
    assert result["failures"] == []


def test_stats_accumulate_across_requests(tmp_path, service, archive_path):
    service.handle({"op": "check", "archive": str(archive_path)})
    service.handle({"op": "extract", "archive": str(archive_path),
                    "dest": str(tmp_path / "o"), "mode": "vxa"})
    response = service.handle({"op": "stats"})
    assert response["ok"]
    result = response["result"]
    assert result["requests"] == 3
    assert result["executor"] == EXECUTOR_THREAD
    assert result["session"]["decodes"] >= 10  # check + extract both decoded


def test_health_reports_pool_admission_and_breakers(service, archive_path):
    service.handle({"op": "check", "archive": str(archive_path)})
    response = service.handle({"id": 9, "op": "health"})
    assert response["ok"]
    result = response["result"]
    assert result["ok"] is True
    assert result["accepting"] is True and result["draining"] is False
    assert result["inflight"] == 0 and result["queue_depth"] == 0
    assert result["uptime_seconds"] >= 0
    assert result["admission"]["completed_total"] == 1
    assert result["pool"]["jobs"] == 2
    assert result["pool"]["executor"] == EXECUTOR_THREAD
    breaker = result["breakers"][str(archive_path)]
    assert breaker["state"] == "closed" and breaker["failures"] == 0


def test_stats_counters_are_monotonic(tmp_path, service, archive_path):
    """The ``counters`` block must only ever increase -- it is scraped as
    Prometheus-style counter series."""
    def scrape() -> dict:
        return service.handle({"op": "stats"})["result"]["counters"]

    before = scrape()
    service.handle({"op": "check", "archive": str(archive_path)})
    service.handle({"op": "extract", "archive": str(archive_path),
                    "dest": str(tmp_path / "mono"), "mode": "vxa"})
    after = scrape()
    assert set(before) == set(after)
    for name, value in after.items():
        assert value >= before[name], name
    assert after["requests_total"] >= before["requests_total"] + 2
    assert after["admitted_total"] == before["admitted_total"] + 2
    assert after["completed_total"] == before["completed_total"] + 2
    assert after["session_decodes_total"] > before["session_decodes_total"]


def test_uptime_uses_monotonic_clock(service, monkeypatch):
    """A wall-clock step (NTP, DST) must not corrupt uptime."""
    import time as time_module
    first = service.handle({"op": "ping"})["result"]["uptime_seconds"]
    monkeypatch.setattr(time_module, "time", lambda: 0.0)  # wall clock rewinds
    second = service.handle({"op": "ping"})["result"]["uptime_seconds"]
    assert second >= first >= 0


def test_rewritten_archive_is_not_served_stale(tmp_path, service):
    """Replacing an archive at the same path must invalidate worker caches."""
    path = tmp_path / "mutable.zip"
    for round_index in range(2):
        payloads = {f"part{part}.txt": f"round {round_index} part {part} ".encode() * 90
                    for part in range(2)}   # two members -> real worker shards
        with vxa.create(path) as builder:
            for name, payload in payloads.items():
                builder.add(name, payload, codec="vxz")
        response = service.handle({
            "op": "extract", "archive": str(path), "jobs": 2,
            "dest": str(tmp_path / f"round{round_index}"), "mode": "vxa",
        })
        assert response["ok"], response
        for name, payload in payloads.items():
            extracted = (tmp_path / f"round{round_index}" / name).read_bytes()
            assert extracted == payload, "worker served a stale cached archive"


def test_errors_are_responses_not_crashes(service):
    missing = service.handle({"op": "extract", "archive": "/nonexistent.zip",
                              "dest": "/tmp/x"})
    assert not missing["ok"] and missing["error_type"]
    unknown = service.handle({"op": "frobnicate"})
    assert not unknown["ok"] and "unknown op" in unknown["error"]
    not_object = service.handle(["not", "a", "dict"])
    assert not not_object["ok"]


def test_shutdown_sets_stopping(service):
    assert not service.stopping
    response = service.handle({"op": "shutdown"})
    assert response["ok"] and response["result"]["stopping"]
    assert service.stopping


def test_default_options_are_bounded_and_reusing():
    service = BatchService(jobs=1, executor=EXECUTOR_THREAD)
    try:
        assert service.options.reuse is VmReusePolicy.REUSE_SAME_ATTRIBUTES
        assert service.options.code_cache_limit == DEFAULT_CODE_CACHE_LIMIT
    finally:
        service.close()


# -- stream transport ----------------------------------------------------------


def test_serve_stream_json_lines(service, archive_path):
    requests = "\n".join([
        json.dumps({"id": 1, "op": "ping"}),
        "this is not json",
        json.dumps({"id": 2, "op": "list", "archive": str(archive_path)}),
        json.dumps({"id": 3, "op": "shutdown"}),
        json.dumps({"id": 4, "op": "ping"}),   # after shutdown: never served
    ]) + "\n"
    out = io.StringIO()
    service.serve_stream(io.StringIO(requests), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert [response.get("id") for response in responses] == [1, None, 2, 3]
    assert responses[0]["ok"] and not responses[1]["ok"]
    assert responses[1]["error_type"] == "JSONDecodeError"
    assert responses[3]["result"]["stopping"] is True


# -- unix socket transport -----------------------------------------------------


def _socket_request(path: str, request: dict) -> dict:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.connect(path)
        client.sendall((json.dumps(request) + "\n").encode())
        client.shutdown(socket.SHUT_WR)
        data = b""
        while not data.endswith(b"\n"):
            chunk = client.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data)


def test_unix_socket_serves_concurrent_clients(tmp_path, service, archive_path,
                                               members):
    socket_path = str(tmp_path / "vxserve.sock")
    server = threading.Thread(target=service.serve_socket, args=(socket_path,),
                              daemon=True)
    server.start()
    deadline = 100
    while not os.path.exists(socket_path) and deadline:
        deadline -= 1
        threading.Event().wait(0.05)
    assert os.path.exists(socket_path), "socket never appeared"

    results: dict[int, dict] = {}

    def client(index: int) -> None:
        results[index] = _socket_request(socket_path, {
            "id": index, "op": "extract", "archive": str(archive_path),
            "dest": str(tmp_path / f"client{index}"), "mode": "vxa", "jobs": 2,
        })

    clients = [threading.Thread(target=client, args=(index,))
               for index in range(3)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=60)
    assert set(results) == {0, 1, 2}
    for index, response in results.items():
        assert response["ok"], response
        for name, data in members.items():
            assert (tmp_path / f"client{index}" / name).read_bytes() == data

    _socket_request(socket_path, {"op": "shutdown"})
    server.join(timeout=10)
    assert not server.is_alive()


# -- subprocess round trip -----------------------------------------------------


def test_subprocess_stdio_round_trip(tmp_path, archive_path, members):
    requests = "\n".join([
        json.dumps({"id": 1, "op": "ping"}),
        json.dumps({"id": 2, "op": "extract", "archive": str(archive_path),
                    "dest": str(tmp_path / "sub"), "mode": "vxa", "jobs": 2}),
        json.dumps({"id": 3, "op": "stats"}),
        json.dumps({"id": 4, "op": "shutdown"}),
    ]) + "\n"
    environment = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    completed = subprocess.run(
        [sys.executable, "-m", "repro.parallel.service",
         "--jobs", "2", "--executor", "thread"],
        input=requests, capture_output=True, text=True, timeout=120,
        env=environment,
    )
    assert completed.returncode == 0, completed.stderr
    responses = [json.loads(line) for line in completed.stdout.splitlines()]
    assert [response["id"] for response in responses] == [1, 2, 3, 4]
    assert all(response["ok"] for response in responses), responses
    for name, data in members.items():
        assert (tmp_path / "sub" / name).read_bytes() == data
    assert responses[2]["result"]["requests"] == 3
