"""Tests for the streaming, session-oriented ``repro.api`` facade."""

import io
import pathlib
import warnings

import pytest

import repro
import repro.api as vxa
from repro.cli import main as cli_main
from repro.codecs.vxz import VxzCodec
from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.errors import ArchiveError, PathTraversalError, VxaError, ZipFormatError
from repro.workloads.text import synthetic_source_tree_bytes
from repro.zipformat.writer import ZipWriter

#: Hard cap on how many bytes a single read() may return in the streaming
#: tests -- far below the archive size, so any code path that slurps the
#: archive into one bytes object cannot survive.
READ_CAP = 1 << 16


class CappedReadFile(io.RawIOBase):
    """A seekable binary file whose ``read()`` never returns more than a cap.

    Mimics throttled/socket-backed sources and *proves* the reader streams:
    with an 8 MB archive and a 64 KB cap, an implementation that relied on
    one big ``read()`` would parse garbage.
    """

    def __init__(self, path, cap: int = READ_CAP):
        self._file = open(path, "rb")
        self._cap = cap
        self.max_single_read = 0

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset, whence=io.SEEK_SET) -> int:
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def read(self, size=-1) -> bytes:
        want = self._cap if size is None or size < 0 else min(size, self._cap)
        chunk = self._file.read(want)
        self.max_single_read = max(self.max_single_read, len(chunk))
        return chunk

    def close(self) -> None:
        self._file.close()
        super().close()


@pytest.fixture(scope="module")
def member_data():
    return {
        # Big raw member pushes the archive well past 8 MB without making the
        # (interpreted) guest decoders chew through megabytes.
        "blobs/sensor.raw": bytes(range(256)) * (9 * 4096),      # ~9.4 MB
        "src/module.c": synthetic_source_tree_bytes(12000, seed=90),
        "notes/readme.txt": b"the decoders travel with the archive\n" * 64,
    }


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, member_data):
    path = tmp_path_factory.mktemp("facade") / "big.zip"
    with open(path, "wb") as sink:
        with vxa.create(sink) as builder:
            builder.add("blobs/sensor.raw", member_data["blobs/sensor.raw"],
                        store_raw=True)
            builder.add("src/module.c", member_data["src/module.c"])
            builder.add("notes/readme.txt", member_data["notes/readme.txt"])
    assert path.stat().st_size > 8 * 1024 * 1024
    return path


# -- streaming round trip ---------------------------------------------------------------


def test_round_trip_via_file_objects(archive_path, member_data):
    """A >8 MB multi-member archive built onto and read from file objects."""
    with vxa.open(archive_path) as archive:
        assert set(archive.names()) == set(member_data)
        for name, original in member_data.items():
            assert archive.extract(name).data == original


def test_extraction_streams_with_capped_reads(archive_path, member_data):
    """Extraction works when no single read() can return the whole archive."""
    source = CappedReadFile(archive_path)
    with vxa.open(source) as archive:
        raw = archive.extract("blobs/sensor.raw")
        assert raw.data == member_data["blobs/sensor.raw"]
        # The VXA path (decoder pseudo-file + encoded stream) also streams.
        decoded = archive.extract("src/module.c", mode=vxa.MODE_VXA)
        assert decoded.used_vxa_decoder
        assert decoded.data == member_data["src/module.c"]
    assert source.max_single_read <= READ_CAP
    assert archive_path.stat().st_size > 100 * READ_CAP


def test_open_member_chunks_equal_one_shot_extract(archive_path, member_data):
    with vxa.open(archive_path) as archive:
        for name in ("blobs/sensor.raw", "src/module.c"):
            with archive.open_member(name) as stream:
                chunks = []
                while True:
                    piece = stream.read(4093)       # deliberately odd size
                    if not piece:
                        break
                    chunks.append(piece)
            assert b"".join(chunks) == archive.extract(name).data


def test_extract_to_writable(archive_path, member_data):
    with vxa.open(archive_path) as archive:
        sink = io.BytesIO()
        written = archive.extract_to("notes/readme.txt", sink)
        assert written == len(member_data["notes/readme.txt"])
        assert sink.getvalue() == member_data["notes/readme.txt"]


def test_extract_into_directory(archive_path, member_data, tmp_path):
    with vxa.open(archive_path) as archive:
        records = archive.extract_into(tmp_path / "out")
    assert {record.name for record in records} == set(member_data)
    for record in records:
        assert record.path.read_bytes() == member_data[record.name]
        assert record.size == len(member_data[record.name])


# -- zip-slip protection ----------------------------------------------------------------


def _crafted_traversal_archive(tmp_path) -> pathlib.Path:
    writer = ZipWriter()
    writer.add_member("../evil", b"pwned")
    writer.add_member("safe.txt", b"fine")
    path = tmp_path / "evil.zip"
    path.write_bytes(writer.finish())
    return path


def test_extract_into_rejects_traversal(tmp_path):
    crafted = _crafted_traversal_archive(tmp_path)
    out = tmp_path / "out"
    with vxa.open(crafted) as archive:
        with pytest.raises(PathTraversalError):
            archive.extract_into(out)
    # Validation happens before any file IO: nothing was written anywhere.
    assert not (tmp_path / "evil").exists()
    assert not out.exists() or not any(out.iterdir())


def test_extract_into_rejects_absolute_names():
    with pytest.raises(PathTraversalError):
        vxa.safe_extract_path(pathlib.Path("."), "/etc/passwd")


def test_cli_extract_refuses_crafted_archive(tmp_path, capsys):
    crafted = _crafted_traversal_archive(tmp_path)
    out = tmp_path / "restored"
    status = cli_main(["extract", str(crafted), "-o", str(out)])
    assert status == 2
    assert "escapes the extraction directory" in capsys.readouterr().err
    assert not (tmp_path / "evil").exists()


# -- options and sessions ---------------------------------------------------------------


def test_read_options_validate():
    with pytest.raises(ValueError):
        vxa.ReadOptions(mode="bogus")
    with pytest.raises(ValueError):
        vxa.ReadOptions(engine="bogus")
    options = vxa.ReadOptions(mode=vxa.MODE_VXA)
    assert options.with_changes(force_decode=True).force_decode
    assert options.mode == vxa.MODE_VXA     # frozen original untouched


def test_session_counters_honor_same_domain(tmp_path):
    """REUSE_SAME_ATTRIBUTES re-initialises exactly on domain changes."""
    path = tmp_path / "mixed.zip"
    with vxa.create(path) as builder:
        for index in range(6):
            mode = 0o600 if index < 3 else 0o644    # two protection domains
            builder.add(f"f{index}.txt", b"shared decoder payload %d " % index * 40,
                        attributes=SecurityAttributes(mode=mode))
    with vxa.open(path) as archive:
        fresh = archive.check(reuse=VmReusePolicy.ALWAYS_FRESH)
        grouped = archive.check(reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES)
        shared = archive.check(reuse=VmReusePolicy.ALWAYS_REUSE)
    for report in (fresh, grouped, shared):
        assert report.ok and report.checked == 6
    assert (fresh.vm_initialisations, fresh.vm_reuses) == (6, 0)
    # One init for the first domain, one re-init at the 0o600 -> 0o644 flip.
    assert (grouped.vm_initialisations, grouped.vm_reuses) == (2, 4)
    assert (shared.vm_initialisations, shared.vm_reuses) == (1, 5)


def test_session_shares_translations_when_reuse_permitted(tmp_path):
    """Members sharing a decoder share its translated code for the session.

    Under REUSE_SAME_ATTRIBUTES a protection-domain flip forces the sandbox
    to be re-initialised, but translations derive from the decoder image
    alone, so the session-owned code cache keeps them: only the first member
    pays translation.
    """
    path = tmp_path / "shared-code.zip"
    with vxa.create(path) as builder:
        for index in range(4):
            mode = 0o600 if index < 2 else 0o644    # forces one re-init
            builder.add(f"f{index}.txt", b"code cache payload %d " % index * 60,
                        attributes=SecurityAttributes(mode=mode))
    options = vxa.ReadOptions(mode=vxa.MODE_VXA,
                              reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES)
    with vxa.open(path, options) as archive:
        for name in archive.names():
            archive.extract(name)
        stats = archive.session.stats
    assert stats.decodes == 4
    assert stats.fragments_translated > 0
    assert stats.retranslations == 0          # nothing translated twice
    assert stats.chained_branches > 0
    assert stats.cache_hits > stats.fragments_translated

    # The safe default (ALWAYS_FRESH) keeps caches private and pays
    # retranslation on every member; the counters expose that cost.
    with vxa.open(path, vxa.ReadOptions(mode=vxa.MODE_VXA)) as archive:
        for name in archive.names():
            archive.extract(name)
        fresh_stats = archive.session.stats
    assert fresh_stats.retranslations > 0


def test_integrity_report_carries_code_cache_counters(tmp_path):
    path = tmp_path / "counters.zip"
    with vxa.create(path) as builder:
        builder.add("a.txt", b"integrity counter payload " * 50)
        builder.add("b.txt", b"integrity counter payload " * 51)
    with vxa.open(path) as archive:
        report = archive.check(reuse=VmReusePolicy.ALWAYS_REUSE)
    assert report.ok
    assert report.fragments_translated > 0
    assert report.chained_branches > 0
    assert report.retranslations == 0
    from repro.core.integrity import format_report
    text = format_report(report)
    assert "code cache" in text and "chained branch(es)" in text


def test_read_options_engine_tuning_knobs(tmp_path):
    with pytest.raises(ValueError):
        vxa.ReadOptions(superblock_limit=0)
    path = tmp_path / "tuned.zip"
    with vxa.create(path) as builder:
        builder.add("t.txt", b"tuning knob payload " * 40)
    options = vxa.ReadOptions(mode=vxa.MODE_VXA, superblock_limit=1,
                              chain_fragments=False)
    with vxa.open(path, options) as archive:
        data = archive.extract("t.txt").data
        assert data == b"tuning knob payload " * 40
        assert archive.session.stats.chained_branches == 0


def test_same_domain_compares_owner_and_group(tmp_path):
    """uid/gid survive the archive round trip and gate VM reuse."""
    path = tmp_path / "owners.zip"
    payload = b"identical mode, different owner " * 30
    with vxa.create(path) as builder:
        builder.add("alice.txt", payload,
                    attributes=SecurityAttributes(owner=1000, group=100, mode=0o644))
        builder.add("bob.txt", payload,
                    attributes=SecurityAttributes(owner=2000, group=100, mode=0o644))
    with vxa.open(path) as archive:
        assert archive.info("alice.txt").attributes.owner == 1000
        assert archive.info("bob.txt").attributes.owner == 2000
        report = archive.check(reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES)
    assert report.ok
    # Same mode but different owners: the domain flip forces a re-init,
    # nothing is reused across the two files.
    assert (report.vm_initialisations, report.vm_reuses) == (2, 0)


def _flip_member_data_byte(archive_bytes: bytes, archive) -> bytes:
    entry = archive.entries()[0]
    data_start = (entry.local_header_offset + 30
                  + len(entry.name.encode()) + len(entry.extra))
    corrupted = bytearray(archive_bytes)
    corrupted[data_start + entry.compressed_size // 2] ^= 0xFF
    return bytes(corrupted)


def test_corrupted_redec_member_fails_crc_on_extract(tmp_path):
    """Pre-compressed (redec) members are CRC-checked even when returned
    in their stored form."""
    payload = VxzCodec().encode(synthetic_source_tree_bytes(8000, seed=91))
    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        info = builder.add("bundle.vxz", payload)
    assert info.precompressed
    with vxa.open(io.BytesIO(buffer.getvalue())) as archive:
        corrupted = _flip_member_data_byte(buffer.getvalue(), archive)
    with vxa.open(io.BytesIO(corrupted)) as bad:
        with pytest.raises(ZipFormatError, match="CRC mismatch"):
            bad.extract("bundle.vxz")


def test_extract_into_leaves_no_partial_file_on_corruption(tmp_path):
    """A mid-member failure must not leave a truncated file at the final name."""
    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        builder.add("big.raw", bytes(range(256)) * 1024, store_raw=True)  # 4 chunks
    with vxa.open(io.BytesIO(buffer.getvalue())) as archive:
        corrupted = _flip_member_data_byte(buffer.getvalue(), archive)
    out = tmp_path / "out"
    with vxa.open(io.BytesIO(corrupted)) as bad:
        with pytest.raises(ZipFormatError):
            bad.extract_into(out)
    assert not any(out.iterdir())       # neither big.raw nor a *.vxa-partial


def test_open_on_non_archive_path_closes_handle(tmp_path):
    junk = tmp_path / "junk.bin"
    junk.write_bytes(b"definitely not a zip")
    with pytest.raises(ZipFormatError):
        vxa.open(junk)      # must not leak the fd it opened


def test_archive_info_exposes_attributes(tmp_path):
    path = tmp_path / "attr.zip"
    with vxa.create(path) as builder:
        builder.add("private.txt", b"x" * 500,
                    attributes=SecurityAttributes(mode=0o600))
    with vxa.open(path) as archive:
        info = archive.info("private.txt")
        assert info.attributes.mode == 0o600
        assert not info.attributes.world_readable
        assert info.codec_name == "vxz" and info.has_decoder


def test_builder_requires_name_and_rejects_use_after_finish(tmp_path):
    with vxa.create(tmp_path / "x.zip") as builder:
        with pytest.raises(ArchiveError):
            builder.add("", b"data")
        builder.add("ok", b"data")
        builder.finish()
        with pytest.raises(ArchiveError):
            builder.add("late", b"data")


# -- deprecated shim equivalence --------------------------------------------------------


def test_shims_match_facade_output(member_data):
    inputs = {"src/module.c": member_data["src/module.c"],
              "notes/readme.txt": member_data["notes/readme.txt"]}

    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        for name, data in inputs.items():
            builder.add(name, data)

    with pytest.warns(DeprecationWarning):
        from repro.core import ArchiveWriter
        writer = ArchiveWriter()
    for name, data in inputs.items():
        writer.add_file(name, data)
    legacy_bytes = writer.finish()
    # Deterministic timestamps make the two byte streams identical.
    assert legacy_bytes == buffer.getvalue()

    with pytest.warns(DeprecationWarning):
        from repro.core import ArchiveReader
        reader = ArchiveReader(legacy_bytes)
    with vxa.open(io.BytesIO(buffer.getvalue())) as archive:
        for name, data in inputs.items():
            legacy = reader.extract(name, mode=vxa.MODE_VXA)
            modern = archive.extract(name, mode=vxa.MODE_VXA)
            assert legacy.data == modern.data == data
            assert legacy.used_vxa_decoder and modern.used_vxa_decoder
    assert reader.check_archive().ok


# -- public surface ---------------------------------------------------------------------


def test_top_level_exports_are_the_facade():
    assert repro.open is vxa.open
    assert repro.create is vxa.create
    assert repro.Archive is vxa.Archive
    assert repro.ReadOptions is vxa.ReadOptions
    assert repro.WriteOptions is vxa.WriteOptions
    assert issubclass(repro.PathTraversalError, repro.ArchiveError)
    assert issubclass(repro.ArchiveError, VxaError)
    for name in ("open", "create", "Archive", "ReadOptions", "WriteOptions",
                 "PathTraversalError"):
        assert name in repro.__all__


def test_warnings_only_from_shims(archive_path):
    """The facade itself must not emit deprecation warnings."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with vxa.open(archive_path) as archive:
            archive.extract("notes/readme.txt")
