"""Differential fuzzing of the VM execution engines.

The superblock translator performs aggressive transformations -- trace
formation across basic blocks, fragment chaining, in-fragment loop
compilation, register/condition-code hoisting, bounds-based mask elision and
address CSE -- so this suite is its safety net: randomized guest programs
(generated straight into assembler source) must behave *identically* on the
reference interpreter and on the translator in every configuration worth
shipping: default superblocks, single-instruction fragments and chaining
disabled.

"Identically" covers exit code, stdout, stderr, the final register file, the
final condition codes and the entire guest memory image.  A separate set of
fixed adversarial programs checks that fault *types* also agree.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import DivisionFault, GuestFault, MemoryFault
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine

from tests.conftest import build_asm

#: Registers the generator may freely clobber (r0 is the syscall register,
#: r6 holds the data-buffer base, r7 is the stack pointer).
_SCRATCH = (1, 2, 3, 4, 5)

_ALU_RR = ("add", "sub", "mul", "and", "or", "xor", "shl", "shru", "shrs")
_ALU_RI = ("addi", "subi", "muli", "andi", "ori", "xori", "shli", "shrui", "shrsi")
_CONDS = ("je", "jne", "jlts", "jles", "jgts", "jges", "jltu", "jleu", "jgtu", "jgeu")
_LOADS = ("ld32", "ld16u", "ld8u", "ld16s", "ld8s")
_STORES = {"st32": 4, "st16": 2, "st8": 1}


def _random_program(seed: int) -> str:
    """Generate a random, always-terminating guest program.

    The program mixes ALU soup, loads/stores confined to a 256-byte data
    window, bounded counter loops, forward branches, call/ret pairs and
    push/pop traffic, then writes the data window to stdout and exits with a
    register-derived code -- plenty of surface for superblock formation,
    chaining and in-fragment loops to go wrong observably.
    """
    rng = random.Random(seed)
    lines = ["_start:", "    movi r6, buffer"]
    label = 0

    def fresh_label(prefix: str) -> str:
        nonlocal label
        label += 1
        return f"{prefix}{label}"

    def random_ops(depth: int, budget: int) -> list[str]:
        ops: list[str] = []
        for _ in range(budget):
            kind = rng.randrange(10)
            rd = rng.choice(_SCRATCH)
            rs = rng.choice(_SCRATCH)
            if kind <= 2:
                ops.append(f"    {rng.choice(_ALU_RR)} r{rd}, r{rs}")
            elif kind <= 4:
                imm = rng.choice((rng.randrange(64), rng.randrange(1 << 32)))
                ops.append(f"    {rng.choice(_ALU_RI)} r{rd}, {imm}")
            elif kind == 5:                    # aligned-window store
                mnemonic, width = rng.choice(list(_STORES.items()))
                offset = rng.randrange(0, 256 - width, width)
                ops.append(f"    lea r{rd}, [r6+{offset}]")
                ops.append(f"    {mnemonic} [r{rd}], r{rs}")
            elif kind == 6:                    # window load
                mnemonic = rng.choice(_LOADS)
                offset = rng.randrange(0, 252)
                ops.append(f"    {mnemonic} r{rd}, [r6+{offset}]")
            elif kind == 7:                    # forward branch over a few ops
                skip = fresh_label("skip")
                ops.append(f"    cmpi r{rd}, {rng.randrange(1 << 32)}")
                ops.append(f"    {rng.choice(_CONDS)} {skip}")
                ops.extend(random_ops(depth + 1, rng.randrange(1, 3)))
                ops.append(f"{skip}:")
            elif kind == 8 and depth == 0:     # bounded counter loop
                head = fresh_label("loop")
                done = fresh_label("brk")
                counter = rng.choice(_SCRATCH)
                top_tested = rng.random() < 0.5
                ops.append(f"    movi r{counter}, {rng.randrange(2, 7)}")
                ops.append(f"{head}:")
                if top_tested:
                    # Exit branch *before* the body: the side exit's register
                    # write-back must still cover body-modified registers
                    # from previous iterations (regression for the looping
                    # superblock spill bug).
                    ops.append(f"    cmpi r{counter}, 0")
                    ops.append(f"    jleu {done}")
                body = random_ops(depth + 1, rng.randrange(1, 4))
                # The loop must terminate: nothing in the body may touch the
                # counter (in any operand position) and push/pop pairs could
                # be half-filtered, so drop them wholesale.
                body = [line for line in body
                        if f"r{counter}" not in line
                        and "push" not in line and "pop" not in line
                        and "[r" not in line]
                ops.extend(body)
                ops.append(f"    subi r{counter}, 1")
                if top_tested:
                    ops.append(f"    jmp {head}")
                else:
                    ops.append(f"    cmpi r{counter}, 0")
                    ops.append(f"    jgtu {head}")
                ops.append(f"{done}:")
            else:                              # push/pop pair
                ops.append(f"    push r{rd}")
                ops.extend(random_ops(depth + 1, rng.randrange(0, 2)))
                ops.append(f"    pop r{rs}")
        return ops

    lines += random_ops(0, rng.randrange(12, 30))

    if rng.random() < 0.6:                     # call/ret through a helper
        lines.append("    call helper")
        lines.append("    call helper")

    # Write the data window, then exit with a truncated register value.
    lines += [
        "    movi r0, 2",
        "    movi r1, 1",
        "    movi r2, buffer",
        "    movi r3, 256",
        "    vxcall",
        f"    mov  r1, r{rng.choice(_SCRATCH)}",
        "    andi r1, 63",
        "    movi r0, 0",
        "    vxcall",
        "helper:",
        "    push r2",
        f"    {rng.choice(_ALU_RR)} r1, r2",
        f"    {rng.choice(_ALU_RI)} r2, {rng.randrange(1 << 16)}",
        "    pop r2",
        "    ret",
        ".data",
        "buffer:",
        "    .space 256",
    ]
    return "\n".join(lines)


def _run(image: bytes, engine: str, **vm_kwargs):
    # Generated programs terminate within a few thousand instructions; the
    # explicit ceiling turns a generator bug into a fast failure, not a hang.
    from repro.vm.limits import ExecutionLimits
    limits = ExecutionLimits(max_instructions=2_000_000)
    vm = VirtualMachine(image, engine=engine, limits=limits, **vm_kwargs)
    result = vm.decode(b"", limits=limits)
    return result, list(vm.regs), tuple(vm.cc), bytes(vm.memory.buffer)


#: Translator configurations that must all match the interpreter.
_TRANSLATOR_CONFIGS = [
    {},                                        # default engine (elision on)
    {"superblock_limit": 1},                   # one instruction per fragment
    {"chain_fragments": False},                # chaining ablation
    {"use_fragment_cache": False, "chain_fragments": False},
    {"analysis_elision": False},               # keep every bounds guard
]


@pytest.mark.parametrize("seed", range(30))
def test_random_programs_agree_across_engines(seed):
    image = build_asm(_random_program(seed))
    reference = _run(image, ENGINE_INTERPRETER)
    for config in _TRANSLATOR_CONFIGS:
        candidate = _run(image, ENGINE_TRANSLATOR, **config)
        assert candidate[0].exit_code == reference[0].exit_code, (seed, config)
        assert candidate[0].output == reference[0].output, (seed, config)
        assert candidate[0].stderr == reference[0].stderr, (seed, config)
        assert candidate[1] == reference[1], (seed, config)   # registers
        assert candidate[2] == reference[2], (seed, config)   # condition codes
        assert candidate[3] == reference[3], (seed, config)   # whole memory


def test_instruction_counts_agree_exactly():
    """Superblock accounting (one addition per exit) must stay exact."""
    for seed in range(8):
        image = build_asm(_random_program(seed))
        interp, *_ = _run(image, ENGINE_INTERPRETER)
        trans, *_ = _run(image, ENGINE_TRANSLATOR)
        assert trans.stats.instructions == interp.stats.instructions, seed


_FAULT_PROGRAMS = [
    ("wild_store", "    movi r1, 0x7000000\n    movi r2, 1\n    st32 [r1], r2\n    halt\n",
     MemoryFault),
    ("wild_load", "    movi r1, 0x7ffffffc\n    ld32 r2, [r1]\n    halt\n",
     MemoryFault),
    ("straddling_store", "    movi r1, 0x3ffffe\n    movi r2, 9\n    st32 [r1], r2\n    halt\n",
     MemoryFault),
    ("div_zero", "    movi r1, 5\n    movi r2, 0\n    divu r1, r2\n    halt\n",
     DivisionFault),
    ("rem_zero", "    movi r1, 5\n    movi r2, 0\n    rems r1, r2\n    halt\n",
     DivisionFault),
    ("jump_wild", "    movi r1, 0x123456\n    jmpr r1\n", GuestFault),
]


@pytest.mark.parametrize("name,body,expected",
                         _FAULT_PROGRAMS, ids=[p[0] for p in _FAULT_PROGRAMS])
def test_fault_behaviour_agrees_across_engines(name, body, expected):
    image = build_asm("_start:\n" + body)
    for engine in (ENGINE_INTERPRETER, ENGINE_TRANSLATOR):
        with pytest.raises(expected):
            VirtualMachine(image, engine=engine).decode(b"")


def test_randomized_out_of_bounds_addresses_fault_identically():
    rng = random.Random(1234)
    for _ in range(10):
        address = rng.randrange(0x400000, 1 << 32)
        for mnemonic in ("ld32", "st32", "ld8u", "st8"):
            if mnemonic.startswith("ld"):
                body = f"    movi r1, {address}\n    {mnemonic} r2, [r1]\n    halt\n"
            else:
                body = f"    movi r1, {address}\n    movi r2, 7\n    {mnemonic} [r1], r2\n    halt\n"
            image = build_asm("_start:\n" + body)
            outcomes = []
            for engine in (ENGINE_INTERPRETER, ENGINE_TRANSLATOR):
                try:
                    VirtualMachine(image, engine=engine).decode(b"")
                    outcomes.append("ok")
                except MemoryFault:
                    outcomes.append("fault")
            assert outcomes[0] == outcomes[1] == "fault", (address, mnemonic)
