"""Unit and property tests for the codec building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.bitio import (
    BitReader,
    BitWriter,
    read_uvarint,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.bwt import (
    bwt_forward,
    bwt_inverse,
    mtf_decode,
    mtf_encode,
    rle_decode,
    rle_encode,
    suffix_array,
)
from repro.codecs.dct import forward_dct, inverse_dct_integer, quant_table, zigzag_scan, zigzag_unscan
from repro.codecs.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code_lengths,
    canonical_codes,
)
from repro.codecs.lz77 import reconstruct, tokenize
from repro.codecs.rice import best_rice_parameter, decode_residuals, encode_residuals
from repro.codecs.wavelet import forward_2d, inverse_2d, padded_size, subband_shapes
from repro.errors import CodecError


# -- bit I/O -------------------------------------------------------------------


def test_bitwriter_lsb_first_packing():
    writer = BitWriter()
    writer.write_bits(0b1011, 4)
    writer.write_bits(0b0110, 4)
    assert writer.getvalue() == bytes([0b01101011])


def test_bitreader_round_trip():
    writer = BitWriter()
    values = [(5, 3), (1, 1), (200, 8), (70000, 17), (0, 0), (1023, 10)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in values:
        assert reader.read_bits(width) == value


def test_bitreader_exhaustion_raises():
    reader = BitReader(b"\x01")
    reader.read_bits(8)
    with pytest.raises(CodecError):
        reader.read_bit()


def test_align_and_byte_reads():
    writer = BitWriter()
    writer.write_bits(1, 3)
    writer.align_to_byte()
    assert writer.getvalue() == b"\x01"
    reader = BitReader(b"\x01\xaa\xbb")
    reader.read_bits(3)
    assert reader.read_bytes(2) == b"\xaa\xbb"


@given(st.integers(min_value=-(2**30), max_value=2**30))
def test_zigzag_round_trip(value):
    assert zigzag_decode(zigzag_encode(value)) == value
    assert zigzag_encode(value) >= 0


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=20))
def test_uvarint_round_trip(values):
    buffer = bytearray()
    for value in values:
        write_uvarint(buffer, value)
    offset = 0
    for value in values:
        decoded, offset = read_uvarint(bytes(buffer), offset)
        assert decoded == value
    assert offset == len(buffer)


# -- Huffman --------------------------------------------------------------------


def test_code_lengths_simple_distribution():
    lengths = build_code_lengths([10, 10, 10, 10])
    assert lengths == [2, 2, 2, 2]


def test_code_lengths_skewed_distribution():
    lengths = build_code_lengths([100, 1, 1, 1])
    assert lengths[0] == 1
    assert max(lengths) <= 3


def test_single_symbol_gets_one_bit():
    lengths = build_code_lengths([0, 42, 0])
    assert lengths == [0, 1, 0]


def test_canonical_codes_are_prefix_free():
    lengths = build_code_lengths([5, 9, 12, 13, 16, 45, 1, 1, 1])
    codes = canonical_codes(lengths)
    entries = [(codes[i], lengths[i]) for i in range(len(lengths)) if lengths[i]]
    for i, (code_a, len_a) in enumerate(entries):
        for j, (code_b, len_b) in enumerate(entries):
            if i == j:
                continue
            if len_a <= len_b:
                assert (code_b >> (len_b - len_a)) != code_a, "prefix violation"


def test_length_limiting_respects_kraft():
    # 40 symbols with exponentially decaying frequencies forces long codes.
    frequencies = [2**max(0, 30 - i) for i in range(40)]
    lengths = build_code_lengths(frequencies, max_length=15)
    assert max(lengths) <= 15
    assert sum(2.0 ** -length for length in lengths if length) <= 1.0 + 1e-9


@settings(max_examples=50)
@given(st.binary(min_size=1, max_size=2000))
def test_huffman_encode_decode_round_trip(data):
    encoder = HuffmanEncoder.from_data(data)
    writer = BitWriter()
    for byte in data:
        encoder.write_symbol(writer, byte)
    decoder = HuffmanDecoder(encoder.lengths)
    reader = BitReader(writer.getvalue())
    decoded = bytes(decoder.read_symbol(reader) for _ in range(len(data)))
    assert decoded == data


def test_oversubscribed_lengths_rejected():
    with pytest.raises(CodecError):
        HuffmanDecoder([1, 1, 1])


# -- LZ77 -----------------------------------------------------------------------


@settings(max_examples=30)
@given(st.binary(max_size=4000))
def test_lz77_round_trip(data):
    assert reconstruct(tokenize(data)) == data


def test_lz77_finds_repeats():
    data = b"abcabcabcabcabcabc" * 10
    tokens = tokenize(data)
    assert any(not token.is_literal for token in tokens)
    literals = sum(1 for token in tokens if token.is_literal)
    assert literals < len(data) // 4


def test_lz77_handles_long_runs():
    data = b"\x00" * 10000
    tokens = tokenize(data)
    assert reconstruct(tokens) == data
    assert len(tokens) < 100


# -- BWT / MTF / RLE ---------------------------------------------------------------


def test_bwt_known_vector():
    transformed, primary = bwt_forward(b"banana")
    assert transformed == b"annbaa"
    assert primary == 4


@settings(max_examples=30)
@given(st.binary(max_size=2000))
def test_bwt_round_trip(data):
    transformed, primary = bwt_forward(data)
    assert bwt_inverse(transformed, primary) == data


def test_bwt_inverse_rejects_bad_primary():
    transformed, _ = bwt_forward(b"hello world")
    with pytest.raises(CodecError):
        bwt_inverse(transformed, 999)


def test_suffix_array_matches_naive():
    data = b"mississippi"
    expected = sorted(range(len(data)), key=lambda i: data[i:])
    assert list(suffix_array(data)) == expected


@given(st.binary(max_size=500))
def test_mtf_round_trip(data):
    assert mtf_decode(mtf_encode(data)) == data


def test_mtf_front_loading():
    encoded = mtf_encode(b"aaaaaabbbbbb")
    assert encoded[1:6] == bytes(5)      # repeated symbols become zeros
    assert encoded[7:] == bytes(5)


@given(st.binary(max_size=2000))
def test_rle_round_trip(data):
    assert rle_decode(rle_encode(data)) == data


def test_rle_compresses_runs():
    data = b"x" * 300
    encoded = rle_encode(data)
    assert len(encoded) < 20
    assert rle_decode(encoded) == data


# -- DCT -----------------------------------------------------------------------------


def test_dct_constant_block_energy_in_dc():
    block = np.full((8, 8), 130, dtype=np.int64)
    coefficients = forward_dct(block)
    assert abs(coefficients[0, 0]) > 0
    assert np.abs(coefficients[1:, :]).sum() + np.abs(coefficients[0, 1:]).sum() <= 2


def test_dct_inverse_reconstructs_closely():
    rng = np.random.default_rng(7)
    block = rng.integers(0, 256, size=(8, 8), dtype=np.int64)
    coefficients = forward_dct(block)
    restored = inverse_dct_integer(coefficients)
    assert np.abs(restored - block).max() <= 2


def test_quant_table_scaling():
    assert quant_table(100).max() <= quant_table(50).max() <= quant_table(5).max()
    assert quant_table(50).min() >= 1


def test_zigzag_scan_round_trip():
    block = np.arange(64, dtype=np.int64).reshape(8, 8)
    assert np.array_equal(zigzag_unscan(zigzag_scan(block)), block)
    assert zigzag_scan(block)[0] == 0
    assert zigzag_scan(block)[1] == 1
    assert zigzag_scan(block)[2] == 8


# -- wavelet ----------------------------------------------------------------------------


@pytest.mark.parametrize("levels", [1, 2, 3])
def test_wavelet_perfect_reconstruction(levels):
    rng = np.random.default_rng(11)
    size = padded_size(50, levels)
    image = rng.integers(0, 256, size=(size, size), dtype=np.int64)
    coefficients = forward_2d(image, levels)
    assert np.array_equal(inverse_2d(coefficients, levels), image)


def test_wavelet_rejects_unpadded_dimensions():
    image = np.zeros((10, 12), dtype=np.int64)
    with pytest.raises(CodecError):
        forward_2d(image, 3)


def test_wavelet_subbands_tile_the_plane():
    bands = subband_shapes(16, 16, 2)
    covered = np.zeros((16, 16), dtype=int)
    for _, row, col, height, width in bands:
        covered[row : row + height, col : col + width] += 1
    assert covered.min() == covered.max() == 1


def test_padded_size():
    assert padded_size(50, 3) == 56
    assert padded_size(64, 3) == 64
    assert padded_size(1, 1) == 2


# -- Rice ----------------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=-(2**15), max_value=2**15), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=14),
)
def test_rice_round_trip(residuals, parameter):
    writer = BitWriter()
    encode_residuals(writer, residuals, parameter)
    reader = BitReader(writer.getvalue())
    assert decode_residuals(reader, len(residuals), parameter) == residuals


def test_best_rice_parameter_tracks_magnitude():
    small = best_rice_parameter([0, 1, -1, 2, 0, 1])
    large = best_rice_parameter([1000, -2000, 1500, -900])
    assert small < large
